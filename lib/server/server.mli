(** The crash-safe route-server: a long-running holder of MPDA routing
    state that ingests incremental topology/cost updates and answers
    route and flow-split queries, built so that a kill at any moment
    loses at most the updates that were never durably accepted.

    {2 Execution model}

    The server runs one {!Mdr_routing.Router} per topology node and
    delivers their control messages synchronously, in FIFO order, with
    zero delay — a particular (valid) schedule of the paper's oracle
    model. Each accepted update therefore drives the control plane to
    quiescence deterministically: the state after update [k] is a pure
    function of the genesis state and updates [1 .. k]. That purity is
    what makes the durability story simple — there is no event engine
    or in-flight message set to persist, only the routers.

    {2 Durability}

    Updates are journaled ({!Journal}) before they are applied;
    periodic snapshots ({!Snapshot}) bound replay. {!restore} rebuilds
    from snapshot + journal to a state whose {!fingerprint} is
    byte-identical to the uninterrupted run at the same sequence
    number, tolerating a torn journal tail and a kill mid-snapshot.
    Updates arriving while the server is down are the client's to
    retry: {!seq} names the last durable update, and the client
    resumes from [seq + 1].

    {2 Backpressure}

    {!offer} feeds the bounded {!Ingest} queue (coalescing, optional
    damping, shedding with an explicit [`Degraded] status);
    {!poll} drains and applies. {!apply} is the direct, loss-free
    path the chaos audit uses. *)

type config = {
  snapshot_every : int;
      (** checkpoint automatically after this many applied updates;
          0 disables automatic checkpoints *)
  fsync : bool;  (** fsync the journal on every append *)
  queue_capacity : int;  (** ingest queue bound *)
  damping : Mdr_routing.Cost_trigger.params option;
      (** significance/hold-down damping for offered cost updates *)
  degraded_hold : float;  (** seconds [`Degraded] outlives the last shed *)
  max_staleness : float;  (** watchdog SLO: seconds without an applied update *)
  max_replay : int;  (** watchdog SLO: journal records a restore may replay *)
}

val default_config : config
(** snapshot every 64 updates, no fsync, queue of 256, no damping,
    5 s degraded hold, 30 s staleness budget, 256-record replay
    budget. *)

type t

val create :
  ?config:config ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  cost:(Mdr_topology.Graph.link -> float) ->
  unit ->
  t
(** Fresh server: every link up at its [cost], an empty journal in
    [dir] (created if missing), any stale state files removed. *)

val restore :
  ?config:config ->
  ?now:float ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  cost:(Mdr_topology.Graph.link -> float) ->
  unit ->
  t
(** Rebuild from [dir]: the snapshot if one is readable (else genesis),
    plus a replay of every clean journal record past it. A torn
    journal tail is skipped with a warning; a leftover snapshot temp
    file is removed; the journal chain must be gapless.
    [topo] and [cost] must describe the same network the directory was
    written with (checked via a topology digest stored in the
    snapshot). @raise Failure on corruption that loses accepted
    updates. *)

val seq : t -> int
(** Global sequence number of the last accepted journal entry (updates
    and claims alike); 0 at genesis. *)

val alive : t -> bool
(** False once closed or killed by a simulated fault. *)

val topology : t -> Mdr_topology.Graph.t

(** {2 Multi-writer state}

    Every accepted entry carries its writer (journal format v2), so the
    server keeps one durable sequence space per client plus an epoch-
    fenced ownership table over duplex link pairs. Client id 0 is the
    trusted local path ({!apply}); wire clients are [>= 1]. *)

val client_seq : t -> client:int -> int
(** [client]'s durable high-water mark: the per-client sequence number
    of its last accepted update; 0 if it never wrote. A client that saw
    [client_seq = k] resumes submitting from [k + 1]. *)

val client_epoch : t -> client:int -> int
(** The epoch [client] last claimed under; 0 if it never claimed. *)

val epoch : t -> int
(** The last granted epoch, monotone across restarts (persisted in
    snapshot and journal). *)

val marks : t -> (int * int) list
(** All [(client, durable seq)] pairs, sorted by client — the table a
    restore must rebuild byte-identically. *)

val claims : t -> ((int * int) * (int * int)) list
(** The ownership table, sorted: [((a, b), (owner, epoch))] for every
    claimed duplex pair. *)

(** {2 Ingestion} *)

val apply : ?torn_after:int -> t -> now:float -> Update.t -> unit
(** Journal, then apply one update and run the control plane to
    quiescence — the trusted local path (client 0, no fencing).
    [torn_after] simulates a kill mid-journal-append: the record is cut
    short, nothing is applied in memory, and the server is dead.
    @raise Invalid_argument on an update that does not fit the topology
    (never journaled). *)

type claim_scope = All | Pairs of (int * int) list
(** What a client claims: the whole topology, or specific duplex pairs
    (normalized or not; claims are stored normalized [(min, max)]). *)

val claim : t -> now:float -> client:int -> scope:claim_scope -> int
(** Grant [client] ownership of [scope] under a fresh epoch (returned),
    strictly greater than every epoch ever granted. The grant is
    journaled (consuming a global sequence number) before it takes
    effect, so it survives restarts. Re-claiming pairs owned by another
    client is the takeover path: the new epoch fences the old owner.
    Idempotence: if [client] already owns every requested pair, the
    standing grant is returned and nothing is journaled — a retried or
    duplicated Claim must not fence its own sender.
    @raise Invalid_argument on a dead server, [client < 1], an empty
    scope, or pairs the topology does not have duplex. *)

type submit_result =
  | Applied  (** durably accepted and applied *)
  | Duplicate
      (** at or below the client's durable mark — already accepted,
          safe to re-ack *)
  | Seq_gap of { expected : int }
      (** out-of-order submit; nothing journaled *)
  | Fenced of { owner : int; current : int }
      (** the touched pair is owned by [owner] under epoch [current],
          which the presented epoch does not meet — a zombie writer *)
  | Died  (** a simulated kill tore the append; the entry was lost *)

val submit :
  t -> now:float -> client:int -> seq:int -> epoch:int -> Update.t -> submit_result
(** The fenced multi-writer path: accept [client]'s update number [seq]
    (per-client, contiguous from 1) presented under [epoch]. Dedup is
    per-(client, seq); an update touching a claimed pair must present
    the owning client's current epoch. Unclaimed pairs are open to any
    client. @raise Invalid_argument on a dead server, [client < 1],
    [seq < 1], or an update that does not fit the topology. *)

val arm_torn : t -> torn_at:int -> unit
(** Arm a one-shot simulated kill: the next journal append (whatever
    path triggers it) tears at byte [torn_at] and the server dies. This
    is how the wire audit plants mid-journal kills on entries that
    arrive through {!submit}. *)

val offer : t -> now:float -> Update.t -> unit
(** Feed the backpressure queue; see {!Ingest.offer}. *)

val poll : ?max:int -> t -> now:float -> int
(** Drain up to [max] queued updates (default: all) through {!apply};
    returns how many were applied. *)

val checkpoint : ?torn_after:int -> t -> unit
(** Write a snapshot and reset the journal. [torn_after] simulates a
    kill mid-snapshot: a partial temp file is left behind, the real
    snapshot and journal are untouched, and the server is dead. *)

val close : t -> unit
(** Release file handles without checkpointing — deliberately
    indistinguishable from a kill between updates, which is the point:
    a close-then-restore must lose nothing. *)

(** {2 Queries} *)

type route = {
  distance : float;
  best : int option;  (** preferred (shortest-path) successor *)
  successors : int list;  (** the loop-free successor set *)
}

val route : t -> src:int -> dst:int -> route

val split : t -> src:int -> dst:int -> (int * float) list
(** Flow-split fractions over the successor set, inversely
    proportional to successor path cost (link + successor's distance),
    normalized to 1. Empty when [src] has no successor for [dst]. *)

(** {2 Health and audit hooks} *)

type status = Ok | Degraded

type restore_info = {
  replayed : int;  (** journal records applied on top of the base state *)
  torn_skipped : bool;
  from_snapshot : bool;  (** false: rebuilt from genesis *)
  duration : float;  (** restore wall-clock seconds *)
}

type corruption = {
  torn_tails : int;  (** torn journal tails skipped at restore *)
  snapshot_fallbacks : int;
      (** unreadable snapshots abandoned for genesis + replay *)
}
(** Corruption this server instance detected and survived. The
    recoveries themselves are the journal/snapshot layers' job; the
    counters exist so an operator can tell "clean" from "survived
    corruption" without reading stderr. *)

type health = {
  seq : int;
  snap_seq : int;  (** sequence number covered by the on-disk snapshot *)
  journal_records : int;  (** records a restore right now would replay *)
  queue_depth : int;
  pending_timers : int;
  status : status;
  staleness : float;  (** seconds since the last applied update *)
  heartbeats : int;
  ingest : Ingest.stats;
  last_restore : restore_info option;
  corruption : corruption;
  spf_full_runs : int;  (** full Dijkstra runs, summed over all routers *)
  spf_repairs : int;  (** incremental SPF repairs, summed over all routers *)
  spf_fallbacks : int;  (** repairs that fell back to a full run *)
}

val health : t -> now:float -> health

type alarm =
  | Stale of { age : float; budget : float }
      (** no update applied for longer than the staleness SLO *)
  | Replay_lag of { records : int; budget : int }
      (** the journal has outgrown the replay SLO — snapshots are not
          keeping up *)
  | Shedding of { shed : int }  (** the ingest queue dropped updates *)
  | Survived_corruption of corruption
      (** raised once, on the first heartbeat after a restore that
          skipped a torn tail or abandoned an unreadable snapshot *)

val heartbeat : t -> now:float -> alarm list
(** The watchdog tick: bump the heartbeat counter and report every SLO
    the server is currently violating. *)

val fingerprint : t -> string
(** Hex digest over the canonical {!Mdr_routing.Router.fingerprint} of
    every router plus the live link set — equal digests mean the
    control planes are in byte-identical protocol states. *)

val settled : t -> bool
(** Every router PASSIVE (always true between {!apply} calls). *)

val lfi_ok : t -> bool
(** The LFI conditions (Eq. 16) hold and every destination's successor
    graph is loop-free, right now. *)
