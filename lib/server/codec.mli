(** Binary framing for the route-server's durable files.

    Every file starts with an 8-byte header — a 4-character magic and a
    big-endian u32 format version — followed by length-prefixed,
    CRC-guarded records:

    {v
      record := len:u32be  crc:u32be  payload:len bytes
    v}

    where [crc] is the IEEE CRC-32 of the payload. The reader
    classifies anything that does not parse cleanly as {e torn} rather
    than raising: a record cut short by a crash (short header, short
    payload, or a checksum mismatch from a partial overwrite) is the
    expected end-state of a killed writer, and the journal/snapshot
    layers decide how tolerant to be of it. *)

val crc32 : string -> int32
(** IEEE 802.3 CRC-32 (polynomial [0xEDB88320], reflected). *)

val header_len : int
(** 8 bytes: magic + version. *)

val header : magic:string -> version:int -> string
(** [magic] must be exactly 4 characters. *)

val check_header : string -> magic:string -> (int, string) result
(** Validate the first {!header_len} bytes of a file; [Ok version] or
    a human-readable reason ([Error]). *)

val frame : string -> string
(** One complete record for the given payload. *)

type read =
  | Record of string  (** a complete, checksum-clean record *)
  | Torn of string  (** truncated or corrupt tail; the reason *)
  | Eof  (** clean end of file *)

val read_record : in_channel -> read
(** Read one record at the channel's current position. After [Torn] the
    channel position is unspecified; callers stop reading. A declared
    length that is implausible or exceeds the bytes remaining in the
    file is classified [Torn] {e before} any allocation, so a hostile
    or bit-flipped length word cannot drive a giant [Bytes.create]. *)
