(** Snapshot files: one {!Codec} record holding the server's complete
    core state, written atomically.

    {!write} builds the whole file in memory, writes it to
    [path ^ ".tmp"], and [rename]s it over [path] — so the snapshot at
    [path] is always either the previous complete snapshot or the new
    complete snapshot, never a mixture. A process killed mid-snapshot
    leaves only a stale temp file, which restore ignores and removes.

    [torn_after] is the chaos harness's fault injector: stop after
    writing that many bytes of the temp file and skip the rename — the
    on-disk end-state of a kill mid-snapshot. *)

val write : ?torn_after:int -> path:string -> string -> [ `Ok | `Torn ]
(** Atomically replace the snapshot at [path] with one holding the
    given payload. [`Torn] is only returned when [torn_after] asked
    for a simulated kill. *)

val read : path:string -> [ `Snapshot of string | `Missing | `Corrupt of string ]
(** Read and checksum-verify the snapshot. [`Corrupt] carries the
    reason (bad header, torn record, trailing garbage). *)

val remove_stale_tmp : path:string -> unit
(** Delete a leftover [path ^ ".tmp"] from an interrupted write, if
    any. *)
