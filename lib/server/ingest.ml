module Cost_trigger = Mdr_routing.Cost_trigger

type stats = {
  offered : int;
  coalesced : int;
  absorbed : int;
  shed : int;
  released : int;
}

type slot =
  | Cost_slot of { src : int; dst : int; mutable cost : float }
  | Event of Update.t

type t = {
  capacity : int;
  degraded_hold : float;
  damping : Cost_trigger.params option;
  initial_cost : src:int -> dst:int -> float;
  q : slot Queue.t;
  cost_slots : (int * int, slot) Hashtbl.t;  (* directed link -> its queued slot *)
  triggers : (int * int, Cost_trigger.t) Hashtbl.t;
  mutable armed : (float * (int * int)) list;  (* (deadline, link), sorted *)
  mutable offered : int;
  mutable coalesced : int;
  mutable absorbed : int;
  mutable shed : int;
  mutable released : int;
  mutable last_shed : float;
}

let create ?damping ?(degraded_hold = 5.0) ~capacity ~initial_cost () =
  if capacity < 1 then invalid_arg "Ingest.create: capacity must be >= 1";
  if not (Float.is_finite degraded_hold) || degraded_hold < 0.0 then
    invalid_arg "Ingest.create: bad degraded_hold";
  Option.iter Cost_trigger.validate damping;
  {
    capacity;
    degraded_hold;
    damping;
    initial_cost;
    q = Queue.create ();
    cost_slots = Hashtbl.create 32;
    triggers = Hashtbl.create 32;
    armed = [];
    offered = 0;
    coalesced = 0;
    absorbed = 0;
    shed = 0;
    released = 0;
    last_shed = Float.neg_infinity;
  }

(* Deterministic timer order: by deadline, ties by link id. *)
let cmp_armed (d1, l1) (d2, l2) =
  let c = Float.compare d1 d2 in
  if c <> 0 then c else Stdlib.compare (l1 : int * int) l2

let arm t ~deadline link =
  t.armed <- List.sort cmp_armed ((deadline, link) :: t.armed)

let enqueue_cost t ~now ~src ~dst cost =
  match Hashtbl.find_opt t.cost_slots (src, dst) with
  | Some (Cost_slot s) -> begin
      s.cost <- cost;
      t.coalesced <- t.coalesced + 1
    end
  | Some (Event _) -> assert false (* only Cost_slots are indexed *)
  | None ->
      if Queue.length t.q >= t.capacity then begin
        t.shed <- t.shed + 1;
        t.last_shed <- now
      end
      else begin
        let s = Cost_slot { src; dst; cost } in
        Queue.push s t.q;
        Hashtbl.replace t.cost_slots (src, dst) s
      end

let trigger_for t ~now ~src ~dst =
  match Hashtbl.find_opt t.triggers (src, dst) with
  | Some trig -> trig
  | None ->
      let params = Option.get t.damping in
      let trig =
        Cost_trigger.create ~params ~initial:(t.initial_cost ~src ~dst) ~now ()
      in
      Hashtbl.replace t.triggers (src, dst) trig;
      trig

let run_actions t ~now ~src ~dst actions =
  match actions with
  | [] -> t.absorbed <- t.absorbed + 1
  | actions ->
      List.iter
        (function
          | Cost_trigger.Apply cost -> enqueue_cost t ~now ~src ~dst cost
          | Cost_trigger.Arm dt -> arm t ~deadline:(now +. dt) (src, dst))
        actions

let offer_cost t ~now ~src ~dst ~cost =
  match t.damping with
  | None -> enqueue_cost t ~now ~src ~dst cost
  | Some _ ->
      let trig = trigger_for t ~now ~src ~dst in
      run_actions t ~now ~src ~dst (Cost_trigger.offer trig ~now ~cost)

let offer t ~now (u : Update.t) =
  t.offered <- t.offered + 1;
  match u with
  | Update.Set_cost { src; dst; cost } -> offer_cost t ~now ~src ~dst ~cost
  | Update.Link_down _ | Update.Link_up _ ->
      (* Topology truth is never shed and never damped; a restoration
         re-announces costs out of band, so the dampers re-align. *)
      (match u with
      | Update.Link_up { a; b; cost } ->
          let sync src dst =
            match Hashtbl.find_opt t.triggers (src, dst) with
            | Some trig -> Cost_trigger.sync trig ~now ~cost
            | None -> ()
          in
          sync a b;
          sync b a
      | Update.Link_down _ | Update.Set_cost _ -> ());
      Queue.push (Event u) t.q

let fire_due t ~now =
  let due, rest = List.partition (fun (deadline, _) -> deadline <= now) t.armed in
  t.armed <- rest;
  List.iter
    (fun (_, (src, dst)) ->
      let trig = Hashtbl.find t.triggers (src, dst) in
      run_actions t ~now ~src ~dst (Cost_trigger.on_check trig ~now))
    due

let drain ?max t ~now =
  fire_due t ~now;
  let budget = match max with None -> Queue.length t.q | Some m -> m in
  let rec pop acc k =
    if k <= 0 || Queue.is_empty t.q then List.rev acc
    else
      match Queue.pop t.q with
      | Cost_slot s ->
          Hashtbl.remove t.cost_slots (s.src, s.dst);
          pop (Update.Set_cost { src = s.src; dst = s.dst; cost = s.cost } :: acc) (k - 1)
      | Event u -> pop (u :: acc) (k - 1)
  in
  let out = pop [] budget in
  t.released <- t.released + List.length out;
  out

let depth t = Queue.length t.q
let pending_timers t = List.length t.armed
let next_deadline t = match t.armed with [] -> None | (d, _) :: _ -> Some d

let status t ~now =
  if Queue.length t.q >= t.capacity || now -. t.last_shed < t.degraded_hold then
    `Degraded
  else `Ok

let stats t =
  {
    offered = t.offered;
    coalesced = t.coalesced;
    absorbed = t.absorbed;
    shed = t.shed;
    released = t.released;
  }
