(* Length-prefixed, CRC-guarded record framing shared by the journal
   and snapshot files. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.equal (Int32.logand !c 1l) 1l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let header_len = 8

let header ~magic ~version =
  if String.length magic <> 4 then invalid_arg "Codec.header: magic must be 4 bytes";
  if version < 0 then invalid_arg "Codec.header: negative version";
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int version);
  Buffer.contents b

let check_header s ~magic =
  if String.length s < header_len then Error "short header"
  else if not (String.equal (String.sub s 0 4) magic) then
    Error
      (Printf.sprintf "bad magic %S (expected %S)" (String.sub s 0 4) magic)
  else Ok (Int32.to_int (String.get_int32_be s 4))

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int32_be b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

type read = Record of string | Torn of string | Eof

(* Records are bounded well below this in practice; an implausible
   length means we are reading garbage (e.g. a torn length word). *)
let max_record_len = 1 lsl 30

let really_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string b)
    else
      let k = input ic b off (n - off) in
      if k = 0 then None else go (off + k)
  in
  if n = 0 then Some "" else go 0

let read_record ic =
  let start = pos_in ic in
  match really_read ic 8 with
  | None -> if pos_in ic = start then Eof else Torn "short record header"
  | Some hdr -> (
      let len = Int32.to_int (String.get_int32_be hdr 0) in
      let crc = String.get_int32_be hdr 4 in
      (* A hostile or torn length word must not drive Bytes.create: cap
         it both absolutely and by the bytes actually left in the file,
         so a flipped high bit costs a Torn, not a giant allocation. *)
      let remaining = in_channel_length ic - pos_in ic in
      if len < 0 || len > max_record_len then
        Torn (Printf.sprintf "implausible record length %d" len)
      else if len > remaining then
        Torn (Printf.sprintf "record length %d exceeds remaining %d bytes" len remaining)
      else
        match really_read ic len with
        | None -> Torn "short record payload"
        | Some payload ->
            if Int32.equal (crc32 payload) crc then Record payload
            else Torn "checksum mismatch")
