module Graph = Mdr_topology.Graph
module Rng = Mdr_util.Rng
module Tab = Mdr_util.Tab
module Procfault = Mdr_faults.Procfault
module Recovery = Mdr_faults.Recovery

type outcome = {
  after : int;
  where : Procfault.where;
  seq_at_restore : int;
  fingerprint_ok : bool;
  lfi_ok : bool;
  from_snapshot : bool;
  torn_skipped : bool;
  replayed : int;
  restore_s : float;
}

type result = {
  updates : int;
  kills : outcome list;
  final_fingerprint_ok : bool;
  final_lfi_ok : bool;
  apply_per_s : float;
  query_per_s : float;
  restore_slo : Recovery.slo;
}

let to_update (u : Procfault.update) : Update.t =
  match u with
  | Procfault.Cost_change { src; dst; cost } -> Update.Set_cost { src; dst; cost }
  | Procfault.Fail { a; b } -> Update.Link_down { a; b }
  | Procfault.Restore { a; b; cost } -> Update.Link_up { a; b; cost }

let default_audit_config =
  { Server.default_config with snapshot_every = 8 }

(* Query throughput over every ordered pair, a few sweeps. *)
let measure_queries srv ~n =
  let sweeps = 5 in
  let count = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to sweeps do
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then begin
          ignore (Server.route srv ~src ~dst);
          ignore (Server.split srv ~src ~dst);
          count := !count + 2
        end
      done
    done
  done;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int !count /. Float.max dt 1e-9

let run ?(config = default_audit_config) ?(updates = 60) ?(kills = 6) ?cost
    ~dir ~topo ~seed () =
  let cost =
    match cost with Some c -> c | None -> Procfault.default_base_cost
  in
  let stream =
    Procfault.stream ~rng:(Rng.substream ~seed ~index:0) ~topo ~updates ()
  in
  let kill_list =
    Procfault.random_kills ~rng:(Rng.substream ~seed ~index:1) ~updates ~kills
  in
  let updates_arr = Array.of_list (List.map to_update stream) in
  (* Sequence numbers whose reference fingerprint a kill will need:
     the update itself for Between / Mid_snapshot (it was durable), the
     one before for Mid_journal (the torn update was never accepted). *)
  let needed = Hashtbl.create 16 in
  List.iter
    (fun (k : Procfault.kill) ->
      let s =
        match k.Procfault.where with
        | Procfault.Between | Procfault.Mid_snapshot -> k.Procfault.after
        | Procfault.Mid_journal -> k.Procfault.after - 1
      in
      Hashtbl.replace needed s ())
    kill_list;
  (* ---- reference run: uninterrupted ---- *)
  let fps = Hashtbl.create 16 in
  let dir_ref = Filename.concat dir "ref" in
  let ref_srv = Server.create ~config ~dir:dir_ref ~topo ~cost () in
  if Hashtbl.mem needed 0 then Hashtbl.replace fps 0 (Server.fingerprint ref_srv);
  let t_apply = ref 0.0 in
  Array.iteri
    (fun i u ->
      let seq = i + 1 in
      let t0 = Unix.gettimeofday () in
      Server.apply ref_srv ~now:(float_of_int seq) u;
      t_apply := !t_apply +. (Unix.gettimeofday () -. t0);
      if Hashtbl.mem needed seq then
        Hashtbl.replace fps seq (Server.fingerprint ref_srv))
    updates_arr;
  let final_fp = Server.fingerprint ref_srv in
  let apply_per_s = float_of_int updates /. Float.max !t_apply 1e-9 in
  let query_per_s = measure_queries ref_srv ~n:(Graph.node_count topo) in
  Server.close ref_srv;
  (* ---- chaos run: same stream, killed and restored ---- *)
  let dir_chaos = Filename.concat dir "chaos" in
  let srv = ref (Server.create ~config ~dir:dir_chaos ~topo ~cost ()) in
  let outcomes = ref [] in
  let restore_and_check (k : Procfault.kill) ~now ~expect_seq =
    assert (not (Server.alive !srv));
    srv := Server.restore ~config ~now ~dir:dir_chaos ~topo ~cost ();
    let h = Server.health !srv ~now in
    let info =
      match h.Server.last_restore with
      | Some i -> i
      | None -> (* restore always records itself *) assert false
    in
    let fingerprint_ok =
      Server.seq !srv = expect_seq
      && String.equal (Server.fingerprint !srv) (Hashtbl.find fps expect_seq)
    in
    outcomes :=
      {
        after = k.Procfault.after;
        where = k.Procfault.where;
        seq_at_restore = Server.seq !srv;
        fingerprint_ok;
        lfi_ok = Server.lfi_ok !srv;
        from_snapshot = info.Server.from_snapshot;
        torn_skipped = info.Server.torn_skipped;
        replayed = info.Server.replayed;
        restore_s = info.Server.duration;
      }
      :: !outcomes
  in
  let pending = ref kill_list in
  Array.iteri
    (fun i u ->
      let seq = i + 1 in
      let now = float_of_int seq in
      match !pending with
      | k :: rest when k.Procfault.after = seq -> (
          pending := rest;
          match k.Procfault.where with
          | Procfault.Between ->
              Server.apply !srv ~now u;
              Server.close !srv;
              restore_and_check k ~now ~expect_seq:seq
          | Procfault.Mid_snapshot ->
              Server.apply !srv ~now u;
              Server.checkpoint ~torn_after:k.Procfault.torn_at !srv;
              restore_and_check k ~now ~expect_seq:seq
          | Procfault.Mid_journal ->
              Server.apply ~torn_after:k.Procfault.torn_at !srv ~now u;
              restore_and_check k ~now ~expect_seq:(seq - 1);
              (* the torn update was never accepted; the client,
                 resuming from [seq], sends it again *)
              Server.apply !srv ~now u)
      | _ -> Server.apply !srv ~now u)
    updates_arr;
  let final_fingerprint_ok = String.equal (Server.fingerprint !srv) final_fp in
  let final_lfi_ok = Server.lfi_ok !srv in
  Server.close !srv;
  let kills = List.rev !outcomes in
  {
    updates;
    kills;
    final_fingerprint_ok;
    final_lfi_ok;
    apply_per_s;
    query_per_s;
    restore_slo = Recovery.slo (List.map (fun o -> o.restore_s) kills);
  }

let ok r =
  r.final_fingerprint_ok && r.final_lfi_ok
  && List.for_all (fun o -> o.fingerprint_ok && o.lfi_ok) r.kills

let report r =
  let where = function
    | Procfault.Between -> "between"
    | Procfault.Mid_journal -> "mid-journal"
    | Procfault.Mid_snapshot -> "mid-snapshot"
  in
  let yn b = if b then "yes" else "NO" in
  let rows =
    List.map
      (fun o ->
        [
          string_of_int o.after;
          where o.where;
          string_of_int o.seq_at_restore;
          (if o.from_snapshot then "snapshot" else "genesis");
          string_of_int o.replayed;
          yn o.torn_skipped;
          Printf.sprintf "%.1f" (o.restore_s *. 1e3);
          yn o.fingerprint_ok;
          yn o.lfi_ok;
        ])
      r.kills
  in
  let table =
    Tab.render
      ~header:
        [
          "kill@"; "where"; "seq"; "base"; "replayed"; "torn"; "restore ms";
          "fp=="; "lfi";
        ]
      rows
  in
  let slo = r.restore_slo in
  Printf.sprintf
    "%s\nfinal: fingerprint %s, lfi %s | apply %.0f/s, query %.0f/s | restore \
     p50 %.1f ms p95 %.1f ms max %.1f ms (n=%d)\n"
    table
    (yn r.final_fingerprint_ok)
    (yn r.final_lfi_ok)
    r.apply_per_s r.query_per_s (slo.Recovery.p50 *. 1e3)
    (slo.Recovery.p95 *. 1e3)
    (slo.Recovery.max_ *. 1e3)
    slo.Recovery.count

(* ---- storm bench ----------------------------------------------------- *)

type storm_report = {
  ticks : int;
  intensity : int;
  budget : int;
  offered : int;
  applied : int;
  coalesced : int;
  shed : int;
  degraded_ticks : int;
  shed_rate : float;
  storm_lfi_ok : bool;
}

(* The storm default queue sits well below a typical topology's
   directed-link count: coalescing alone bounds queue depth by the
   number of distinct links, so a capacity above that would make
   shedding unreachable and the bench vacuous. *)
let default_storm_config =
  { default_audit_config with Server.queue_capacity = 16 }

let storm ?(config = default_storm_config) ?(ticks = 50) ~intensity ~budget
    ~dir ~topo ~seed () =
  if intensity < 1 then invalid_arg "Audit.storm: intensity must be >= 1";
  if budget < 1 then invalid_arg "Audit.storm: budget must be >= 1";
  let cost = Procfault.default_base_cost in
  let stream =
    Procfault.cost_storm
      ~rng:(Rng.substream ~seed ~index:2)
      ~topo ~updates:(ticks * intensity) ()
  in
  let updates_arr = Array.of_list (List.map to_update stream) in
  let srv = Server.create ~config ~dir ~topo ~cost () in
  let applied = ref 0 in
  let degraded = ref 0 in
  for tick = 0 to ticks - 1 do
    let now = float_of_int tick in
    for j = 0 to intensity - 1 do
      Server.offer srv ~now updates_arr.((tick * intensity) + j)
    done;
    applied := !applied + Server.poll ~max:budget srv ~now;
    match (Server.health srv ~now).Server.status with
    | Server.Degraded -> incr degraded
    | Server.Ok -> ()
  done;
  (* drain: keep polling past the storm until the queue and every
     hold-down timer are gone *)
  let now = ref (float_of_int ticks) in
  let guard = ref 0 in
  let continue = ref true in
  while !continue do
    incr guard;
    if !guard > 10_000 then failwith "Audit.storm: backlog failed to drain";
    applied := !applied + Server.poll srv ~now:!now;
    let h = Server.health srv ~now:!now in
    if h.Server.queue_depth = 0 && h.Server.pending_timers = 0 then
      continue := false
    else now := !now +. 1.0
  done;
  let stats = (Server.health srv ~now:!now).Server.ingest in
  let storm_lfi_ok = Server.lfi_ok srv && Server.settled srv in
  Server.close srv;
  {
    ticks;
    intensity;
    budget;
    offered = stats.Ingest.offered;
    applied = !applied;
    coalesced = stats.Ingest.coalesced;
    shed = stats.Ingest.shed;
    degraded_ticks = !degraded;
    shed_rate =
      float_of_int stats.Ingest.shed
      /. Float.max (float_of_int stats.Ingest.offered) 1.0;
    storm_lfi_ok;
  }

(* ---- snapshot-interval sweep ----------------------------------------- *)

type sweep_point = {
  snapshot_every : int;
  restore_mean_s : float;
  restore_max_s : float;
  journal_records : int;
}

let sweep_snapshot_interval ?(intervals = [ 1; 4; 16; 64; 0 ]) ?(updates = 200)
    ?cost ~dir ~topo ~seed () =
  let cost =
    match cost with Some c -> c | None -> Procfault.default_base_cost
  in
  let stream =
    Procfault.stream ~rng:(Rng.substream ~seed ~index:3) ~topo ~updates ()
  in
  let updates_arr = Array.of_list (List.map to_update stream) in
  List.map
    (fun snapshot_every ->
      let config = { default_audit_config with snapshot_every } in
      let d =
        Filename.concat dir (Printf.sprintf "sweep_%d" snapshot_every)
      in
      let srv = Server.create ~config ~dir:d ~topo ~cost () in
      Array.iteri
        (fun i u -> Server.apply srv ~now:(float_of_int (i + 1)) u)
        updates_arr;
      let journal_records =
        (Server.health srv ~now:(float_of_int updates)).Server.journal_records
      in
      Server.close srv;
      let times = ref [] in
      for _ = 1 to 3 do
        let s = Server.restore ~config ~dir:d ~topo ~cost () in
        let h = Server.health s ~now:(float_of_int updates) in
        (match h.Server.last_restore with
        | Some info -> times := info.Server.duration :: !times
        | None -> assert false);
        Server.close s
      done;
      let times = !times in
      let total = List.fold_left ( +. ) 0.0 times in
      {
        snapshot_every;
        restore_mean_s = total /. float_of_int (List.length times);
        restore_max_s = List.fold_left Float.max 0.0 times;
        journal_records;
      })
    intervals
