(** Update-storm backpressure: the bounded ingest queue sitting between
    the wire and the server's apply path.

    Three defences, all deterministic functions of the offered stream
    and the caller-supplied clock:

    - {b Coalescing}: a queued-but-not-yet-applied cost update for a
      directed link is {e replaced in place} by a newer sample for the
      same link — the queue holds at most one pending cost per link, so
      a storm of samples on few links costs queue space proportional to
      the links, not the samples.
    - {b Damping} (optional): each directed link's samples pass through
      a {!Mdr_routing.Cost_trigger} — OSPF-TE significance threshold +
      hold-down, BGP-style flap suppression — so sub-threshold wobble
      is absorbed before it can occupy queue space. Held-down samples
      are released by {!drain} when their timers expire.
    - {b Shedding}: when the queue is full, new cost samples are
      dropped (counted, never silently) and the server reports
      [`Degraded] — mirroring the overload layer's contract that
      degradation is explicit, never a wrong answer. Topology truth
      ({!Update.Link_down} / {!Update.Link_up}) is never shed: those
      enqueue even past the bound.

    Timers are the caller's: every entry point takes [now], so the
    server, the audit harness and the tests all drive the same machine
    with their own clocks. *)

type t

type stats = {
  offered : int;  (** updates handed to {!offer} *)
  coalesced : int;  (** cost samples folded into an already-queued slot *)
  absorbed : int;  (** cost samples the damper absorbed (sub-threshold) *)
  shed : int;  (** cost samples dropped because the queue was full *)
  released : int;  (** updates handed out by {!drain} *)
}

val create :
  ?damping:Mdr_routing.Cost_trigger.params ->
  ?degraded_hold:float ->
  capacity:int ->
  initial_cost:(src:int -> dst:int -> float) ->
  unit ->
  t
(** [capacity] bounds the queue (>= 1). [initial_cost] tells a link's
    first damper what the routing process already knows.
    [degraded_hold] (default 5 s) is how long after the last shed the
    status stays [`Degraded]. *)

val offer : t -> now:float -> Update.t -> unit
(** Never blocks and never raises on overload — overload turns into
    coalescing, absorption or shedding, visible in {!stats}. *)

val drain : ?max:int -> t -> now:float -> Update.t list
(** Release due held-down costs into the queue, then pop up to [max]
    updates (default: all) in arrival order. *)

val depth : t -> int
(** Updates currently queued. *)

val pending_timers : t -> int
(** Armed hold-down timers not yet due — work {!drain} will release
    later; a quiescence check must count them. *)

val next_deadline : t -> float option
(** Earliest armed hold-down expiry, if any. *)

val status : t -> now:float -> [ `Ok | `Degraded ]

val stats : t -> stats
