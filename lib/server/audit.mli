(** The crash-recovery chaos audit: prove, for a seeded schedule of
    updates and process kills, that the route-server's durability story
    holds.

    {!run} executes the same update stream twice:

    - a {b reference} run, never interrupted, recording the server's
      {!Server.fingerprint} at every sequence number a kill will need
      plus the final state;
    - a {b chaos} run, killed at every scheduled point
      ({!Mdr_faults.Procfault.where}: between updates, mid-journal-
      append, mid-snapshot) and restored each time.

    After every restore the audit asserts the restored fingerprint
    equals the reference fingerprint {e at the same sequence number} —
    byte-identical protocol state, not approximate recovery — and that
    the LFI conditions hold, so recovery can never reintroduce the
    loops the protocol exists to prevent. A kill mid-journal loses
    exactly the torn update, which the audit (playing the client)
    re-sends, exercising the resume-from-[seq] contract.

    {!storm} and {!sweep_snapshot_interval} are the bench side:
    shed-rate under offered-load storms and restore-latency as a
    function of checkpoint cadence. *)

type outcome = {
  after : int;  (** the kill's 1-based update number *)
  where : Mdr_faults.Procfault.where;
  seq_at_restore : int;  (** sequence number the restored server reports *)
  fingerprint_ok : bool;  (** restored state == reference state at that seq *)
  lfi_ok : bool;  (** LFI + successor-graph acyclicity after restore *)
  from_snapshot : bool;
  torn_skipped : bool;  (** restore had to skip a torn journal tail *)
  replayed : int;  (** journal records replayed by the restore *)
  restore_s : float;  (** restore wall-clock seconds *)
}

type result = {
  updates : int;
  kills : outcome list;  (** in kill order *)
  final_fingerprint_ok : bool;
      (** chaos run's final state == uninterrupted run's final state *)
  final_lfi_ok : bool;
  apply_per_s : float;  (** reference-run update throughput *)
  query_per_s : float;  (** route+split queries per second, converged state *)
  restore_slo : Mdr_faults.Recovery.slo;  (** percentiles over restore_s *)
}

val run :
  ?config:Server.config ->
  ?updates:int ->
  ?kills:int ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  result
(** Defaults: 60 updates, 6 kills, cost [1 + 1000 * prop_delay],
    {!Server.default_config} with a snapshot every 8 updates (so a
    60-update run crosses several checkpoints). State lives under
    [dir/ref] and [dir/chaos] (created; reused if present). *)

val ok : result -> bool
(** Every kill recovered fingerprint-identical and LFI-clean, and the
    final states agree. *)

val report : result -> string
(** Human-readable per-kill table plus the restore-SLO summary,
    rendered with {!Mdr_util.Tab}. *)

type storm_report = {
  ticks : int;
  intensity : int;  (** cost updates offered per tick *)
  budget : int;  (** updates the server applies per tick *)
  offered : int;
  applied : int;
  coalesced : int;
  shed : int;
  degraded_ticks : int;  (** ticks the server reported [Degraded] *)
  shed_rate : float;  (** shed / offered *)
  storm_lfi_ok : bool;  (** LFI held once the storm drained *)
}

val storm :
  ?config:Server.config ->
  ?ticks:int ->
  intensity:int ->
  budget:int ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  storm_report
(** Offer [intensity] random cost updates per tick while the server
    only applies [budget] per tick, for [ticks] ticks; then let it
    drain. Overload must surface as coalescing and counted shedding
    with [Degraded] status — never a wrong answer: the final LFI check
    is part of the report. The default config shrinks the queue to 16
    (below a typical topology's directed-link count — coalescing bounds
    queue depth by distinct links, so a bigger queue could never
    shed). *)

type sweep_point = {
  snapshot_every : int;
  restore_mean_s : float;
  restore_max_s : float;
  journal_records : int;  (** journal length at the moment of the kill *)
}

val sweep_snapshot_interval :
  ?intervals:int list ->
  ?updates:int ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  sweep_point list
(** For each checkpoint cadence, ingest the same update stream, kill,
    and time the restore (mean and max over several repeats): the
    restore-latency / snapshot-frequency trade the operator tunes.
    Default intervals: 1, 4, 16, 64, 0 (journal-only). *)
