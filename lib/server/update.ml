module Graph = Mdr_topology.Graph

type t =
  | Set_cost of { src : int; dst : int; cost : float }
  | Link_down of { a : int; b : int }
  | Link_up of { a : int; b : int; cost : float }

exception Corrupt of string

let encode u =
  let b = Buffer.create 17 in
  let node v = Buffer.add_int32_be b (Int32.of_int v) in
  let cost c = Buffer.add_int64_be b (Int64.bits_of_float c) in
  (match u with
  | Set_cost { src; dst; cost = c } ->
      Buffer.add_char b '\000';
      node src;
      node dst;
      cost c
  | Link_down { a; b = b' } ->
      Buffer.add_char b '\001';
      node a;
      node b'
  | Link_up { a; b = b'; cost = c } ->
      Buffer.add_char b '\002';
      node a;
      node b';
      cost c);
  Buffer.contents b

let decode s =
  (* Exact-length per tag: trailing garbage is as much a framing error
     as a short payload, and a flipped byte must never decode to a
     different-but-plausible update silently. *)
  let exactly n =
    if String.length s <> n then
      raise
        (Corrupt (Printf.sprintf "update payload is %d bytes (expected %d)" (String.length s) n))
  in
  if String.length s = 0 then raise (Corrupt "empty update payload");
  let node off = Int32.to_int (String.get_int32_be s off) in
  let cost off = Int64.float_of_bits (String.get_int64_be s off) in
  match s.[0] with
  | '\000' ->
      exactly 17;
      Set_cost { src = node 1; dst = node 5; cost = cost 9 }
  | '\001' ->
      exactly 9;
      Link_down { a = node 1; b = node 5 }
  | '\002' ->
      exactly 17;
      Link_up { a = node 1; b = node 5; cost = cost 9 }
  | c -> raise (Corrupt (Printf.sprintf "unknown update tag %d" (Char.code c)))

type entry =
  | Apply of { client : int; seq : int; epoch : int; update : t }
  | Claim of { client : int; epoch : int; pairs : (int * int) list }

let touched = function
  | Set_cost { src; dst; _ } -> (min src dst, max src dst)
  | Link_down { a; b } | Link_up { a; b; _ } -> (min a b, max a b)

let encode_entry e =
  let b = Buffer.create 32 in
  let u32 v = Buffer.add_int32_be b (Int32.of_int v) in
  (match e with
  | Apply { client; seq; epoch; update } ->
      Buffer.add_char b '\x10';
      u32 client;
      Buffer.add_int64_be b (Int64.of_int seq);
      u32 epoch;
      Buffer.add_string b (encode update)
  | Claim { client; epoch; pairs } ->
      Buffer.add_char b '\x11';
      u32 client;
      u32 epoch;
      u32 (List.length pairs);
      List.iter
        (fun (x, y) ->
          u32 x;
          u32 y)
        pairs);
  Buffer.contents b

let decode_entry s =
  let len = String.length s in
  if len = 0 then raise (Corrupt "empty entry payload");
  let u32 off = Int32.to_int (String.get_int32_be s off) in
  match s.[0] with
  | '\x10' ->
      if len < 18 then raise (Corrupt "short Apply entry");
      let client = u32 1 in
      let seq = Int64.to_int (String.get_int64_be s 5) in
      let epoch = u32 13 in
      let update = decode (String.sub s 17 (len - 17)) in
      Apply { client; seq; epoch; update }
  | '\x11' ->
      if len < 13 then raise (Corrupt "short Claim entry");
      let client = u32 1 in
      let epoch = u32 5 in
      let n = u32 9 in
      if n < 0 || len <> 13 + (8 * n) then
        raise
          (Corrupt
             (Printf.sprintf "Claim entry is %d bytes (expected %d pairs)" len n));
      let pairs = List.init n (fun i -> (u32 (13 + (8 * i)), u32 (17 + (8 * i)))) in
      Claim { client; epoch; pairs }
  (* Version-1 journals framed a bare update; accept them so a server
     upgraded in place replays its old journal as local writes. *)
  | _ -> Apply { client = 0; seq = 0; epoch = 0; update = decode s }

let check_cost what c =
  if not (Float.is_finite c) || c <= 0.0 then
    invalid_arg (Printf.sprintf "%s: cost must be finite and positive" what)

let check_link topo what ~src ~dst =
  if Graph.link topo ~src ~dst = None then
    invalid_arg (Printf.sprintf "%s: topology has no link %d -> %d" what src dst)

let validate topo = function
  | Set_cost { src; dst; cost } ->
      check_link topo "Update.Set_cost" ~src ~dst;
      check_cost "Update.Set_cost" cost
  | Link_down { a; b } ->
      check_link topo "Update.Link_down" ~src:a ~dst:b;
      check_link topo "Update.Link_down" ~src:b ~dst:a
  | Link_up { a; b; cost } ->
      check_link topo "Update.Link_up" ~src:a ~dst:b;
      check_link topo "Update.Link_up" ~src:b ~dst:a;
      check_cost "Update.Link_up" cost

let describe topo u =
  let n v = Graph.name topo v in
  match u with
  | Set_cost { src; dst; cost } -> Printf.sprintf "cost %s->%s %.4g" (n src) (n dst) cost
  | Link_down { a; b } -> Printf.sprintf "down %s--%s" (n a) (n b)
  | Link_up { a; b; cost } -> Printf.sprintf "up %s--%s %.4g" (n a) (n b) cost
