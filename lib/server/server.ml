module Graph = Mdr_topology.Graph
module Router = Mdr_routing.Router
module Lfi = Mdr_routing.Lfi
module Cost_trigger = Mdr_routing.Cost_trigger

type config = {
  snapshot_every : int;
  fsync : bool;
  queue_capacity : int;
  damping : Cost_trigger.params option;
  degraded_hold : float;
  max_staleness : float;
  max_replay : int;
}

let default_config =
  {
    snapshot_every = 64;
    fsync = false;
    queue_capacity = 256;
    damping = None;
    degraded_hold = 5.0;
    max_staleness = 30.0;
    max_replay = 256;
  }

let validate_config c =
  if c.snapshot_every < 0 then invalid_arg "Server: snapshot_every must be >= 0";
  if c.queue_capacity < 1 then invalid_arg "Server: queue_capacity must be >= 1";
  if not (Float.is_finite c.degraded_hold) || c.degraded_hold < 0.0 then
    invalid_arg "Server: bad degraded_hold";
  if not (Float.is_finite c.max_staleness) || c.max_staleness <= 0.0 then
    invalid_arg "Server: bad max_staleness";
  if c.max_replay < 1 then invalid_arg "Server: max_replay must be >= 1";
  Option.iter Cost_trigger.validate c.damping

type status = Ok | Degraded

type restore_info = {
  replayed : int;
  torn_skipped : bool;
  from_snapshot : bool;
  duration : float;
}

type corruption = { torn_tails : int; snapshot_fallbacks : int }

let zero_corruption = { torn_tails = 0; snapshot_fallbacks = 0 }
let corruption_events c = c.torn_tails + c.snapshot_fallbacks

type health = {
  seq : int;
  snap_seq : int;
  journal_records : int;
  queue_depth : int;
  pending_timers : int;
  status : status;
  staleness : float;
  heartbeats : int;
  ingest : Ingest.stats;
  last_restore : restore_info option;
  corruption : corruption;
  spf_full_runs : int;
  spf_repairs : int;
  spf_fallbacks : int;
}

type alarm =
  | Stale of { age : float; budget : float }
  | Replay_lag of { records : int; budget : int }
  | Shedding of { shed : int }
  | Survived_corruption of corruption

type claim_scope = All | Pairs of (int * int) list

type submit_result =
  | Applied
  | Duplicate
  | Seq_gap of { expected : int }
  | Fenced of { owner : int; current : int }
  | Died

type t = {
  topo : Graph.t;
  dir : string;
  config : config;
  routers : Router.t array;
  link_state : (int * int, float) Hashtbl.t;  (* directed link -> current cost *)
  mutable seq : int;
  mutable journal : Journal.t;
  mutable snap_seq : int;
  ingest : Ingest.t;
  mutable last_applied : float;
  mutable heartbeats : int;
  mutable shed_seen : int;  (* sheds already reported by a heartbeat *)
  mutable alive : bool;
  mutable last_restore : restore_info option;
  mutable corruption : corruption;
  mutable corruption_seen : int;  (* events already reported by a heartbeat *)
  marks : (int, int) Hashtbl.t;  (* client -> durable per-client seq *)
  grants : (int, int) Hashtbl.t;  (* client -> last granted epoch *)
  claim_tbl : (int * int, int * int) Hashtbl.t;  (* duplex pair -> owner, epoch *)
  mutable epoch : int;  (* last granted epoch, monotone across restarts *)
  mutable torn_next : int option;  (* one-shot: tear the next journal append *)
}

let journal_path dir = Filename.concat dir "journal.bin"
let snapshot_path dir = Filename.concat dir "snapshot.bin"

let rec ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Server: %s exists and is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then ensure_dir parent;
    (* tolerate a concurrent mkdir of the same path *)
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let seq t = t.seq
let alive t = t.alive
let topology t = t.topo
let epoch t = t.epoch

let client_seq t ~client =
  match Hashtbl.find_opt t.marks client with Some s -> s | None -> 0

let client_epoch t ~client =
  match Hashtbl.find_opt t.grants client with Some e -> e | None -> 0

let marks t = (Mdr_util.Sorted_tbl.bindings t.marks : (int * int) list)

let claims t =
  (Mdr_util.Sorted_tbl.bindings t.claim_tbl : ((int * int) * (int * int)) list)

let arm_torn t ~torn_at =
  if torn_at < 1 then invalid_arg "Server.arm_torn: torn_at must be >= 1";
  t.torn_next <- Some torn_at

(* ---- the synchronous message pump ------------------------------------ *)

(* Deliver control messages FIFO with zero delay until the plane is
   quiescent. This is one valid schedule of the paper's oracle model, and
   because it is a deterministic function of the seed messages, the whole
   server state is a pure function of the accepted update sequence —
   which is what lets snapshot + replay reproduce it bit-for-bit. *)
let pump t seeds =
  let q = Queue.create () in
  let push from outs =
    List.iter (fun (o : Router.output) -> Queue.push (from, o) q) outs
  in
  List.iter (fun (from, outs) -> push from outs) seeds;
  let delivered = ref 0 in
  while not (Queue.is_empty q) do
    incr delivered;
    if !delivered > 10_000_000 then
      failwith "Server: control plane failed to quiesce";
    let from, ({ dst; msg } : Router.output) = Queue.pop q in
    (* A message only arrives if its link still exists; the receiver
       additionally drops traffic from neighbors it considers down. *)
    if Hashtbl.mem t.link_state (from, dst) then
      push dst (Router.handle_msg t.routers.(dst) ~from_:from msg)
  done

(* ---- applying updates ------------------------------------------------ *)

let apply_mem t (u : Update.t) =
  match u with
  | Update.Set_cost { src; dst; cost } ->
      if Hashtbl.mem t.link_state (src, dst) then begin
        Hashtbl.replace t.link_state (src, dst) cost;
        pump t [ (src, Router.handle_link_cost t.routers.(src) ~nbr:dst ~cost) ]
      end
      (* cost news about a down link changes nothing until it comes up *)
  | Update.Link_down { a; b } ->
      if Hashtbl.mem t.link_state (a, b) then begin
        Hashtbl.remove t.link_state (a, b);
        Hashtbl.remove t.link_state (b, a);
        let outs_a = Router.handle_link_down t.routers.(a) ~nbr:b in
        let outs_b = Router.handle_link_down t.routers.(b) ~nbr:a in
        pump t [ (a, outs_a); (b, outs_b) ]
      end
  | Update.Link_up { a; b; cost } ->
      if Hashtbl.mem t.link_state (a, b) then begin
        (* already up: take it as fresh cost news for both directions *)
        Hashtbl.replace t.link_state (a, b) cost;
        Hashtbl.replace t.link_state (b, a) cost;
        let outs_a = Router.handle_link_cost t.routers.(a) ~nbr:b ~cost in
        let outs_b = Router.handle_link_cost t.routers.(b) ~nbr:a ~cost in
        pump t [ (a, outs_a); (b, outs_b) ]
      end
      else begin
        Hashtbl.replace t.link_state (a, b) cost;
        Hashtbl.replace t.link_state (b, a) cost;
        let outs_a = Router.handle_link_up t.routers.(a) ~nbr:b ~cost in
        let outs_b = Router.handle_link_up t.routers.(b) ~nbr:a ~cost in
        pump t [ (a, outs_a); (b, outs_b) ]
      end

(* ---- snapshot payload ------------------------------------------------ *)

(* A snapshot is only meaningful against the topology it was taken for;
   the digest is over the canonical node-and-link listing. *)
let topo_digest topo =
  let buf = Buffer.create 256 in
  List.iter
    (fun node -> Buffer.add_string buf (Graph.name topo node ^ ";"))
    (Graph.nodes topo);
  List.iter
    (fun (l : Graph.link) ->
      Buffer.add_string buf
        (Printf.sprintf "%d>%d:%h:%h;" l.src l.dst l.capacity l.prop_delay))
    (Graph.links topo);
  Digest.string (Buffer.contents buf)

let sorted_links t = (Mdr_util.Sorted_tbl.bindings t.link_state : ((int * int) * float) list)

let snapshot_payload t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (topo_digest t.topo);
  Buffer.add_int64_be buf (Int64.of_int t.seq);
  Buffer.add_int32_be buf (Int32.of_int (Array.length t.routers));
  Array.iter
    (fun r ->
      let blob = Router.snapshot r in
      Buffer.add_int32_be buf (Int32.of_int (String.length blob));
      Buffer.add_string buf blob)
    t.routers;
  let links = sorted_links t in
  Buffer.add_int32_be buf (Int32.of_int (List.length links));
  List.iter
    (fun ((src, dst), cost) ->
      Buffer.add_int32_be buf (Int32.of_int src);
      Buffer.add_int32_be buf (Int32.of_int dst);
      Buffer.add_int64_be buf (Int64.bits_of_float cost))
    links;
  (* v2: the writer tables, sorted so the payload is canonical. *)
  let mks = marks t in
  Buffer.add_int32_be buf (Int32.of_int (List.length mks));
  List.iter
    (fun (client, s) ->
      Buffer.add_int32_be buf (Int32.of_int client);
      Buffer.add_int64_be buf (Int64.of_int s))
    mks;
  let gts = (Mdr_util.Sorted_tbl.bindings t.grants : (int * int) list) in
  Buffer.add_int32_be buf (Int32.of_int (List.length gts));
  List.iter
    (fun (client, e) ->
      Buffer.add_int32_be buf (Int32.of_int client);
      Buffer.add_int32_be buf (Int32.of_int e))
    gts;
  let cls = claims t in
  Buffer.add_int32_be buf (Int32.of_int (List.length cls));
  List.iter
    (fun ((a, b), (owner, e)) ->
      Buffer.add_int32_be buf (Int32.of_int a);
      Buffer.add_int32_be buf (Int32.of_int b);
      Buffer.add_int32_be buf (Int32.of_int owner);
      Buffer.add_int32_be buf (Int32.of_int e))
    cls;
  Buffer.add_int32_be buf (Int32.of_int t.epoch);
  Buffer.contents buf

exception Bad_snapshot of string

let decode_snapshot ~topo payload =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length payload then
      raise (Bad_snapshot "snapshot payload truncated")
  in
  let read_digest () =
    need 16;
    let d = String.sub payload !pos 16 in
    pos := !pos + 16;
    d
  in
  let read_i64 () =
    need 8;
    let v = Int64.to_int (String.get_int64_be payload !pos) in
    pos := !pos + 8;
    v
  in
  let read_u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_be payload !pos) in
    pos := !pos + 4;
    if v < 0 then raise (Bad_snapshot "negative length field");
    v
  in
  let read_f64 () =
    need 8;
    let v = Int64.float_of_bits (String.get_int64_be payload !pos) in
    pos := !pos + 8;
    v
  in
  let digest = read_digest () in
  if not (String.equal digest (topo_digest topo)) then
    raise
      (Bad_snapshot
         "snapshot was taken for a different topology (digest mismatch)");
  let snap_seq = read_i64 () in
  let n = read_u32 () in
  if n <> Graph.node_count topo then
    raise (Bad_snapshot "snapshot router count does not match topology");
  let routers =
    Array.init n (fun _ ->
        let len = read_u32 () in
        need len;
        let blob = String.sub payload !pos len in
        pos := !pos + len;
        Router.restore blob)
  in
  let n_links = read_u32 () in
  let link_state = Hashtbl.create (max 16 (2 * n_links)) in
  for _ = 1 to n_links do
    let src = read_u32 () in
    let dst = read_u32 () in
    let cost = read_f64 () in
    Hashtbl.replace link_state (src, dst) cost
  done;
  let marks = Hashtbl.create 16 in
  let n_marks = read_u32 () in
  for _ = 1 to n_marks do
    let client = read_u32 () in
    let s = read_i64 () in
    Hashtbl.replace marks client s
  done;
  let grants = Hashtbl.create 16 in
  let n_grants = read_u32 () in
  for _ = 1 to n_grants do
    let client = read_u32 () in
    let e = read_u32 () in
    Hashtbl.replace grants client e
  done;
  let claim_tbl = Hashtbl.create 32 in
  let n_claims = read_u32 () in
  for _ = 1 to n_claims do
    let a = read_u32 () in
    let b = read_u32 () in
    let owner = read_u32 () in
    let e = read_u32 () in
    Hashtbl.replace claim_tbl (a, b) (owner, e)
  done;
  let epoch = read_u32 () in
  if !pos <> String.length payload then
    raise (Bad_snapshot "trailing bytes in snapshot payload");
  (snap_seq, routers, link_state, marks, grants, claim_tbl, epoch)

(* ---- construction ---------------------------------------------------- *)

(* Deterministic bring-up of the whole network from nothing: every link
   comes up in the topology's insertion order, each followed by a pump to
   quiescence. Never journaled — it is recomputed, identically, by any
   restore that lacks a snapshot. *)
let genesis ~topo ~cost =
  let n = Graph.node_count topo in
  let routers =
    Array.init n (fun id -> Router.create ~mode:Router.Mpda ~id ~n ())
  in
  let link_state = Hashtbl.create (max 16 (2 * Graph.link_count topo)) in
  let shell = (routers, link_state) in
  let pump_shell seeds =
    let q = Queue.create () in
    let push from outs =
      List.iter (fun (o : Router.output) -> Queue.push (from, o) q) outs
    in
    List.iter (fun (from, outs) -> push from outs) seeds;
    while not (Queue.is_empty q) do
      let from, ({ dst; msg } : Router.output) = Queue.pop q in
      if Hashtbl.mem link_state (from, dst) then
        push dst (Router.handle_msg routers.(dst) ~from_:from msg)
    done
  in
  (* Links must come up duplex-atomically: a router's link-up LSU
     demands an ACK, and the peer drops messages from neighbors it
     still considers down — bringing the directions up one pump apart
     would strand the first sender in ACTIVE forever. *)
  List.iter
    (fun (l : Graph.link) ->
      match Graph.link topo ~src:l.dst ~dst:l.src with
      | Some rev ->
          if l.src < l.dst then begin
            let c_fwd = cost l and c_rev = cost rev in
            Hashtbl.replace link_state (l.src, l.dst) c_fwd;
            Hashtbl.replace link_state (l.dst, l.src) c_rev;
            pump_shell
              [
                (l.src, Router.handle_link_up routers.(l.src) ~nbr:l.dst ~cost:c_fwd);
                (l.dst, Router.handle_link_up routers.(l.dst) ~nbr:l.src ~cost:c_rev);
              ]
          end
          (* the reverse direction was handled with its partner *)
      | None ->
          let c = cost l in
          Hashtbl.replace link_state (l.src, l.dst) c;
          pump_shell
            [ (l.src, Router.handle_link_up routers.(l.src) ~nbr:l.dst ~cost:c) ])
    (Graph.links topo);
  shell

let make ?(marks = Hashtbl.create 16) ?(grants = Hashtbl.create 16)
    ?(claim_tbl = Hashtbl.create 32) ?(epoch = 0) ~config ~dir ~topo ~routers
    ~link_state ~journal ~seq ~snap_seq ~now ~last_restore () =
  let ingest =
    Ingest.create ?damping:config.damping ~degraded_hold:config.degraded_hold
      ~capacity:config.queue_capacity
      ~initial_cost:(fun ~src ~dst ->
        match Hashtbl.find_opt link_state (src, dst) with
        | Some c -> c
        | None -> infinity)
      ()
  in
  {
    topo;
    dir;
    config;
    routers;
    link_state;
    seq;
    journal;
    snap_seq;
    ingest;
    last_applied = now;
    heartbeats = 0;
    shed_seen = 0;
    alive = true;
    last_restore;
    corruption = zero_corruption;
    corruption_seen = 0;
    marks;
    grants;
    claim_tbl;
    epoch;
    torn_next = None;
  }

let create ?(config = default_config) ~dir ~topo ~cost () =
  validate_config config;
  ensure_dir dir;
  Snapshot.remove_stale_tmp ~path:(snapshot_path dir);
  if Sys.file_exists (snapshot_path dir) then Sys.remove (snapshot_path dir);
  let routers, link_state = genesis ~topo ~cost in
  let journal = Journal.create ~fsync:config.fsync ~path:(journal_path dir) () in
  make ~config ~dir ~topo ~routers ~link_state ~journal ~seq:0 ~snap_seq:0
    ~now:(Unix.gettimeofday ()) ~last_restore:None ()

(* ---- checkpoint ------------------------------------------------------ *)

let checkpoint ?torn_after t =
  if not t.alive then invalid_arg "Server.checkpoint: server is not alive";
  let payload = snapshot_payload t in
  match Snapshot.write ?torn_after ~path:(snapshot_path t.dir) payload with
  | `Torn ->
      (* The simulated process died mid-snapshot: the old snapshot and
         the journal are untouched on disk; this process is gone. *)
      t.alive <- false;
      Journal.close t.journal
  | `Ok ->
      t.snap_seq <- t.seq;
      (* The snapshot now covers every journaled record; reset the
         journal. A crash in between is safe: records whose seq the
         snapshot already covers are skipped at replay. *)
      Journal.close t.journal;
      t.journal <- Journal.create ~fsync:t.config.fsync ~path:(journal_path t.dir) ()

(* Replaying an entry against memory: the routing side effect plus the
   writer-table side effect. Used identically on the accept path and at
   restore, which is what makes the marks rebuild byte-identical. *)
let apply_entry_mem t (e : Update.entry) =
  match e with
  | Update.Apply { client; seq; epoch = _; update } ->
      apply_mem t update;
      Hashtbl.replace t.marks client seq
  | Update.Claim { client; epoch; pairs } ->
      List.iter (fun p -> Hashtbl.replace t.claim_tbl p (client, epoch)) pairs;
      Hashtbl.replace t.grants client epoch;
      if epoch > t.epoch then t.epoch <- epoch

(* Durably accept one entry: journal first (append-before-apply), then
   mutate memory. A torn append — explicit [torn_after] or the armed
   one-shot — kills the server with the entry unaccepted. Returns
   whether the server survived. *)
let accept_entry ?torn_after t ~now (e : Update.entry) =
  let torn_after =
    match torn_after with
    | Some _ -> torn_after
    | None ->
        let armed = t.torn_next in
        t.torn_next <- None;
        armed
  in
  let next = t.seq + 1 in
  Journal.append ?torn_after t.journal ~seq:next
    ~payload:(Update.encode_entry e);
  match torn_after with
  | Some _ ->
      (* Simulated kill mid-append: the entry was never accepted —
         neither applied in memory (we are dead) nor recoverable from
         the torn record (replay skips it). The client retries it. *)
      t.alive <- false;
      false
  | None ->
      apply_entry_mem t e;
      t.seq <- next;
      t.last_applied <- now;
      if t.config.snapshot_every > 0 && t.seq - t.snap_seq >= t.config.snapshot_every
      then checkpoint t;
      true

(* The local path: trusted, unfenced, client id 0. *)
let apply ?torn_after t ~now (u : Update.t) =
  if not t.alive then invalid_arg "Server.apply: server is not alive";
  Update.validate t.topo u;
  let seq = client_seq t ~client:0 + 1 in
  ignore
    (accept_entry ?torn_after t ~now
       (Update.Apply { client = 0; seq; epoch = 0; update = u }))

let check_client what client =
  if client < 1 then
    invalid_arg (Printf.sprintf "Server.%s: client ids start at 1" what)

let submit t ~now ~client ~seq ~epoch (u : Update.t) =
  if not t.alive then invalid_arg "Server.submit: server is not alive";
  check_client "submit" client;
  if seq < 1 then invalid_arg "Server.submit: seq must be >= 1";
  Update.validate t.topo u;
  let cur = client_seq t ~client in
  if seq <= cur then Duplicate
  else if seq > cur + 1 then Seq_gap { expected = cur + 1 }
  else
    let fence =
      match Hashtbl.find_opt t.claim_tbl (Update.touched u) with
      | None -> None
      | Some (owner, held) ->
          if owner = client && epoch >= held then None else Some (owner, held)
    in
    match fence with
    | Some (owner, current) -> Fenced { owner; current }
    | None ->
        if accept_entry t ~now (Update.Apply { client; seq; epoch; update = u })
        then Applied
        else Died

let claim t ~now ~client ~scope =
  if not t.alive then invalid_arg "Server.claim: server is not alive";
  check_client "claim" client;
  let all = Mdr_faults.Procfault.duplex_pairs t.topo in
  let pairs =
    match scope with
    | All -> all
    | Pairs l ->
        if l = [] then invalid_arg "Server.claim: empty pair list";
        let norm = List.sort_uniq compare (List.map (fun (a, b) -> (min a b, max a b)) l) in
        List.iter
          (fun p ->
            if not (List.mem p all) then
              invalid_arg
                (Printf.sprintf "Server.claim: (%d, %d) is not a duplex pair"
                   (fst p) (snd p)))
          norm;
        norm
  in
  let already_owned =
    List.for_all
      (fun p ->
        match Hashtbl.find_opt t.claim_tbl p with
        | Some (owner, _) -> owner = client
        | None -> false)
      pairs
  in
  if already_owned then
    (* Idempotent re-grant: a retried or chaos-duplicated Claim must
       not mint a fresh epoch, or it would fence its own sender's
       in-flight submits. The client's standing grant covers every
       requested pair (grants are monotone per client). *)
    client_epoch t ~client
  else begin
    let epoch = t.epoch + 1 in
    ignore (accept_entry t ~now (Update.Claim { client; epoch; pairs }));
    epoch
  end

(* ---- restore --------------------------------------------------------- *)

let restore ?(config = default_config) ?now ~dir ~topo ~cost () =
  validate_config config;
  let t0 = Unix.gettimeofday () in
  let now = match now with Some n -> n | None -> t0 in
  ensure_dir dir;
  Snapshot.remove_stale_tmp ~path:(snapshot_path dir);
  let snapshot_fallbacks = ref 0 in
  let base =
    match Snapshot.read ~path:(snapshot_path dir) with
    | `Missing -> None
    | `Corrupt reason ->
        incr snapshot_fallbacks;
        (* A snapshot that fails its checksum is treated as absent: the
           state it held is recomputed from genesis + the journal. If the
           journal alone cannot reach it, replay detects the gap below
           and refuses, rather than silently losing accepted updates. *)
        Printf.eprintf "snapshot %s: unreadable (%s); falling back to genesis\n%!"
          (snapshot_path dir) reason;
        None
    | `Snapshot payload -> (
        match decode_snapshot ~topo payload with
        | base -> Some base
        | exception Bad_snapshot reason -> failwith ("Server.restore: " ^ reason))
  in
  let from_snapshot = Option.is_some base in
  let base_seq, routers, link_state, marks, grants, claim_tbl, epoch =
    match base with
    | Some b -> b
    | None ->
        let routers, link_state = genesis ~topo ~cost in
        (0, routers, link_state, Hashtbl.create 16, Hashtbl.create 16,
         Hashtbl.create 32, 0)
  in
  let journal, replay =
    if Sys.file_exists (journal_path dir) then
      Journal.open_append ~fsync:config.fsync ~path:(journal_path dir) ()
    else
      ( Journal.create ~fsync:config.fsync ~path:(journal_path dir) (),
        { Journal.entries = []; torn = false; clean_bytes = Codec.header_len } )
  in
  let tmp =
    make ~marks ~grants ~claim_tbl ~epoch ~config ~dir ~topo ~routers
      ~link_state ~journal ~seq:base_seq ~snap_seq:base_seq ~now
      ~last_restore:None ()
  in
  let replayed = ref 0 in
  List.iter
    (fun (rec_seq, payload) ->
      if rec_seq > tmp.seq then begin
        if rec_seq <> tmp.seq + 1 then
          failwith
            (Printf.sprintf
               "Server.restore: journal gap (have seq %d, next record is %d)"
               tmp.seq rec_seq);
        let e =
          try Update.decode_entry payload
          with Update.Corrupt reason ->
            failwith ("Server.restore: corrupt journal payload: " ^ reason)
        in
        let e =
          (* a v1 payload decodes with seq 0: renumber it as the local
             writer's next accepted update *)
          match e with
          | Update.Apply { client = 0; seq = 0; epoch = 0; update } ->
              Update.Apply
                { client = 0; seq = client_seq tmp ~client:0 + 1; epoch = 0; update }
          | e -> e
        in
        apply_entry_mem tmp e;
        tmp.seq <- rec_seq;
        incr replayed
      end)
    replay.Journal.entries;
  tmp.last_restore <-
    Some
      {
        replayed = !replayed;
        torn_skipped = replay.Journal.torn;
        from_snapshot;
        duration = Unix.gettimeofday () -. t0;
      };
  tmp.corruption <-
    {
      torn_tails = (if replay.Journal.torn then 1 else 0);
      snapshot_fallbacks = !snapshot_fallbacks;
    };
  tmp

(* ---- backpressure path ----------------------------------------------- *)

let offer t ~now u =
  if not t.alive then invalid_arg "Server.offer: server is not alive";
  Update.validate t.topo u;
  Ingest.offer t.ingest ~now u

let poll ?max t ~now =
  if not t.alive then invalid_arg "Server.poll: server is not alive";
  let updates = Ingest.drain ?max t.ingest ~now in
  List.iter (fun u -> apply t ~now u) updates;
  List.length updates

let close t =
  if t.alive then begin
    t.alive <- false;
    Journal.close t.journal
  end

(* ---- queries --------------------------------------------------------- *)

type route = { distance : float; best : int option; successors : int list }

let check_node t name v =
  if v < 0 || v >= Array.length t.routers then
    invalid_arg (Printf.sprintf "Server.%s: node %d out of range" name v)

let route t ~src ~dst =
  check_node t "route" src;
  check_node t "route" dst;
  let r = t.routers.(src) in
  {
    distance = Router.distance r ~dst;
    best = Router.best_successor r ~dst;
    successors = Router.successors r ~dst;
  }

let split t ~src ~dst =
  check_node t "split" src;
  check_node t "split" dst;
  let r = t.routers.(src) in
  let succs = Router.successors r ~dst in
  let weights =
    List.map
      (fun k ->
        let through = Router.link_cost r ~nbr:k +. Router.neighbor_distance r ~nbr:k ~dst in
        let w = if Float.is_finite through && through > 0.0 then 1.0 /. through else 0.0 in
        (k, w))
      succs
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  if total > 0.0 then List.map (fun (k, w) -> (k, w /. total)) weights
  else
    (* all successor costs degenerate (should not happen with validated
       positive costs): split evenly rather than divide by zero *)
    let n = List.length succs in
    List.map (fun k -> (k, 1.0 /. float_of_int n)) succs

(* ---- health ---------------------------------------------------------- *)

let health t ~now =
  let spf_full, spf_rep, spf_fb =
    Array.fold_left
      (fun (f, r, b) router ->
        let s = Router.spf_stats router in
        ( f + s.Mdr_routing.Incr_spf.full_runs,
          r + s.Mdr_routing.Incr_spf.repairs,
          b + s.Mdr_routing.Incr_spf.fallbacks ))
      (0, 0, 0) t.routers
  in
  {
    seq = t.seq;
    snap_seq = t.snap_seq;
    journal_records = Journal.records t.journal;
    queue_depth = Ingest.depth t.ingest;
    pending_timers = Ingest.pending_timers t.ingest;
    status =
      (match Ingest.status t.ingest ~now with `Ok -> Ok | `Degraded -> Degraded);
    staleness = now -. t.last_applied;
    heartbeats = t.heartbeats;
    ingest = Ingest.stats t.ingest;
    last_restore = t.last_restore;
    corruption = t.corruption;
    spf_full_runs = spf_full;
    spf_repairs = spf_rep;
    spf_fallbacks = spf_fb;
  }

let heartbeat t ~now =
  t.heartbeats <- t.heartbeats + 1;
  let h = health t ~now in
  let alarms = ref [] in
  (* Corruption the server survived (torn tails, snapshot fallbacks) is
     reported exactly once, on the first heartbeat after the event —
     the same delta pattern as shedding. *)
  if corruption_events t.corruption > t.corruption_seen then begin
    t.corruption_seen <- corruption_events t.corruption;
    alarms := Survived_corruption t.corruption :: !alarms
  end;
  let shed_new = h.ingest.Ingest.shed - t.shed_seen in
  if shed_new > 0 then begin
    t.shed_seen <- h.ingest.Ingest.shed;
    alarms := Shedding { shed = shed_new } :: !alarms
  end;
  if h.journal_records > t.config.max_replay then
    alarms :=
      Replay_lag { records = h.journal_records; budget = t.config.max_replay }
      :: !alarms;
  if h.staleness > t.config.max_staleness then
    alarms := Stale { age = h.staleness; budget = t.config.max_staleness } :: !alarms;
  !alarms

(* ---- oracles --------------------------------------------------------- *)

let fingerprint t =
  let buf = Buffer.create 4096 in
  Array.iter (fun r -> Buffer.add_string buf (Router.fingerprint r)) t.routers;
  List.iter
    (fun ((src, dst), cost) ->
      Buffer.add_string buf (Printf.sprintf "L%d>%d=%h;" src dst cost))
    (sorted_links t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let settled t = Array.for_all Router.is_passive t.routers

let lfi_ok t =
  let n = Array.length t.routers in
  let neighbors i = Router.up_neighbors t.routers.(i) in
  let feasible ~node ~dst = Router.feasible_distance t.routers.(node) ~dst in
  let reported ~holder ~about ~dst =
    Router.neighbor_distance t.routers.(holder) ~nbr:about ~dst
  in
  let ok = ref true in
  for dst = 0 to n - 1 do
    if not (Lfi.lfi_conditions_hold ~n ~neighbors ~feasible ~reported ~dst) then
      ok := false;
    if
      not
        (Lfi.successor_graph_acyclic ~n
           ~successors:(fun ~node -> Router.successors t.routers.(node) ~dst)
           ~dst)
    then ok := false
  done;
  !ok
