(** The route-server's incremental input language: the three topology
    mutations a deployed router ingests continuously. Updates are what
    the write-ahead journal records, so their encoding is a versioned,
    hand-rolled binary format (tag byte + fixed-width big-endian
    fields) rather than [Marshal] — a journal must stay readable across
    builds. *)

type t =
  | Set_cost of { src : int; dst : int; cost : float }
      (** the measured cost of the directed link [src -> dst] changed *)
  | Link_down of { a : int; b : int }  (** duplex failure *)
  | Link_up of { a : int; b : int; cost : float }
      (** duplex restoration, both directions at [cost] *)

exception Corrupt of string
(** A payload that passed the journal's CRC but does not decode — a
    format-version mismatch, not a torn write. *)

val encode : t -> string

val decode : string -> t
(** @raise Corrupt on an unknown tag or a short payload. *)

val validate : Mdr_topology.Graph.t -> t -> unit
(** Updates must name links the topology actually has (both directions
    for duplex events) and carry finite positive costs.
    @raise Invalid_argument otherwise. *)

(** {1 Journal entries}

    Since journal format v2 every record carries its writer: which
    client submitted it, at which per-client sequence number, under
    which ownership epoch. Restore rebuilds every client's durable
    high-water mark and the claim table from these envelopes alone. *)

type entry =
  | Apply of { client : int; seq : int; epoch : int; update : t }
      (** [client]'s [seq]-th accepted update, admitted under [epoch]
          (0 = the unfenced local path) *)
  | Claim of { client : int; epoch : int; pairs : (int * int) list }
      (** [client] took ownership of the normalized duplex [pairs]
          under the new [epoch] *)

val touched : t -> int * int
(** The normalized duplex pair [(min, max)] an update writes — the unit
    of ownership epoch fencing is checked against. *)

val encode_entry : entry -> string

val decode_entry : string -> entry
(** @raise Corrupt on an unknown tag or malformed envelope. A bare v1
    update payload decodes as [Apply { client = 0; seq = 0; epoch = 0 }]
    (the local-path writer); replay normalizes the sequence number. *)

val describe : Mdr_topology.Graph.t -> t -> string
