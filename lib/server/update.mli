(** The route-server's incremental input language: the three topology
    mutations a deployed router ingests continuously. Updates are what
    the write-ahead journal records, so their encoding is a versioned,
    hand-rolled binary format (tag byte + fixed-width big-endian
    fields) rather than [Marshal] — a journal must stay readable across
    builds. *)

type t =
  | Set_cost of { src : int; dst : int; cost : float }
      (** the measured cost of the directed link [src -> dst] changed *)
  | Link_down of { a : int; b : int }  (** duplex failure *)
  | Link_up of { a : int; b : int; cost : float }
      (** duplex restoration, both directions at [cost] *)

exception Corrupt of string
(** A payload that passed the journal's CRC but does not decode — a
    format-version mismatch, not a torn write. *)

val encode : t -> string

val decode : string -> t
(** @raise Corrupt on an unknown tag or a short payload. *)

val validate : Mdr_topology.Graph.t -> t -> unit
(** Updates must name links the topology actually has (both directions
    for duplex events) and carry finite positive costs.
    @raise Invalid_argument otherwise. *)

val describe : Mdr_topology.Graph.t -> t -> string
