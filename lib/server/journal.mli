(** The write-ahead journal: an append-only file of {!Codec} records,
    one per accepted update, written and flushed {e before} the update
    is applied in memory. Each record's payload is the update's
    sequence number (big-endian i64) followed by its {!Update}
    encoding, so replay can skip records a snapshot already covers and
    detect gaps.

    Crash discipline:
    - A fresh journal is created atomically (written to a temp file,
      then renamed), so a kill during creation never leaves a
      half-written header at the final path.
    - A kill during {!append} leaves at most one torn record at the
      tail. {!replay} skips it with a warning on stderr, and
      {!open_append} truncates it away before any further append, so
      the torn bytes can never corrupt later records.
    - Records must be contiguous; a clean record whose sequence number
      breaks the chain means real corruption and raises. *)

type t

val create : ?fsync:bool -> path:string -> unit -> t
(** Create (or overwrite) an empty journal at [path] and open it for
    appending. [fsync] (default false) additionally [fsync]s after
    every append — survival of an OS crash rather than just a process
    kill. *)

val append : ?torn_after:int -> t -> seq:int -> payload:string -> unit
(** Durably append one record, then return. [torn_after] is the chaos
    harness's fault injector: write only that many bytes of the framed
    record (clamped to [1 .. len - 1]) — a simulated kill mid-write —
    and mark the journal dead; any further append raises. *)

val records : t -> int
(** Records appended or replayed through this handle. *)

val close : t -> unit

type replay = {
  entries : (int * string) list;  (** (seq, update payload), journal order *)
  torn : bool;  (** a torn trailing record was skipped *)
  clean_bytes : int;  (** file prefix covered by clean records *)
}

val replay : path:string -> replay
(** Read every clean record. A torn tail is skipped with a warning on
    stderr. @raise Failure on a missing file or corrupt header. *)

val open_append : ?fsync:bool -> path:string -> unit -> t * replay
(** {!replay}, then truncate any torn tail and open for appending. *)
