let magic = "MDRS"
let version = 2

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.single_write_substring fd s !off (len - !off)
  done

let write ?torn_after ~path payload =
  let whole = Codec.header ~magic ~version ^ Codec.frame payload in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match torn_after with
  | Some k ->
      (* Simulated kill: a strict prefix of the temp file, no rename. *)
      let k = max 0 (min k (String.length whole - 1)) in
      write_all fd (String.sub whole 0 k);
      Unix.close fd;
      `Torn
  | None ->
      write_all fd whole;
      Unix.fsync fd;
      Unix.close fd;
      Sys.rename tmp path;
      `Ok

let read ~path =
  if not (Sys.file_exists path) then `Missing
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          try Ok (really_input_string ic Codec.header_len)
          with End_of_file -> Error "truncated header"
        with
        | Error reason -> `Corrupt reason
        | Ok hdr -> (
            match Codec.check_header hdr ~magic with
            | Error reason -> `Corrupt reason
            | Ok v when v <> version ->
                `Corrupt (Printf.sprintf "unsupported version %d" v)
            | Ok _ -> (
                match Codec.read_record ic with
                | Codec.Eof -> `Corrupt "empty snapshot"
                | Codec.Torn reason -> `Corrupt reason
                | Codec.Record payload -> (
                    match Codec.read_record ic with
                    | Codec.Eof -> `Snapshot payload
                    | Codec.Record _ | Codec.Torn _ -> `Corrupt "trailing garbage"))))

let remove_stale_tmp ~path =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then Sys.remove tmp
