(** OPT — Gallager's distributed minimum-delay routing algorithm
    (paper Section 2.2), run in the fluid model as the lower-bound
    baseline.

    Each iteration computes the flows induced by the current routing
    parameters, the marginal link costs l_ik = D'_ik(f_ik), and the
    marginal distances delta_ij (Eq. 4); it then shifts, at every
    router and for every destination, a step-size-(eta) amount of
    traffic from neighbors with large l_ik + delta_kj toward the best
    neighbor (Eq. 6). Gallager's blocking rule keeps every successor
    graph acyclic: flow may only be *added* toward a neighbor whose
    marginal distance is strictly smaller and which is not "improper"
    (carrying, directly or downstream, an uphill routed link).

    The global step size [eta] is exactly the constant the paper
    criticises: too small converges slowly, too large diverges — the
    [history] field feeds the eta-sweep ablation bench. *)

type degradation = {
  admitted_fraction : float;
      (** uniform fraction of every input rate actually admitted *)
  shed : (Mdr_fluid.Traffic.flow * float) list;
      (** per original input flow, the fraction of its rate shed
          (1 - admitted_fraction); order matches
          [Mdr_fluid.Traffic.flows] of the offered matrix *)
  per_destination : (int * float) list;
      (** per-destination max-flow admissible fractions from
          {!Mdr_fluid.Feasibility.report} *)
  reason : [ `Min_cut | `No_convergence ];
      (** [`Min_cut]: the offered matrix exceeds a per-destination
          min-cut, so admission was capped up front.
          [`No_convergence]: the cut bound admitted the load but the
          solver still diverged past capacity (destinations competing
          for shared links), so admission was shrunk until it
          stabilised. *)
}

type status =
  | Feasible  (** the full offered matrix was admitted *)
  | Degraded of degradation
      (** infeasible demand: solved for a uniformly scaled-down
          admitted matrix instead of silently diverging *)

type result = {
  params : Mdr_fluid.Params.t;  (** converged routing parameters *)
  flows : Mdr_fluid.Flows.t;  (** flows of the {e admitted} matrix *)
  total_cost : float;  (** D_T (Eq. 3) *)
  avg_delay : float;  (** seconds per packet *)
  iterations : int;
  history : float list;  (** D_T after each iteration, oldest first *)
  converged : bool;  (** relative improvement fell below [tol] *)
  status : status;  (** whether demand had to be shed *)
  admitted : Mdr_fluid.Traffic.t;
      (** the matrix actually solved (= input when [Feasible]) *)
}

val spf_params :
  Mdr_fluid.Evaluate.model -> Mdr_topology.Graph.t -> Mdr_fluid.Params.t
(** Single-path routing parameters along the shortest-path trees under
    zero-flow marginal costs: the initial condition for OPT and the
    static-SPF reference. *)

val solve :
  ?eta:float ->
  ?adaptive:bool ->
  ?second_order:bool ->
  ?max_iters:int ->
  ?tol:float ->
  ?degrade:bool ->
  ?init:Mdr_fluid.Params.t ->
  Mdr_fluid.Evaluate.model ->
  Mdr_topology.Graph.t ->
  Mdr_fluid.Traffic.t ->
  result
(** Defaults: [eta = 1e4], [adaptive = true], [second_order = false],
    [max_iters = 2000],
    [tol = 1e-9]. With [adaptive], the step size is halved whenever an
    iteration increases D_T, which makes the gradient projection a
    descent method regardless of the initial [eta]; [adaptive:false]
    reproduces Gallager's fixed global step — including its
    oscillation/divergence for large [eta] (the ABL-ETA bench).
    [second_order] scales steps by the traded links' D'' — the
    Bertsekas-Gallager acceleration the paper's related work cites —
    making a dimensionless [eta] around 1 appropriate for any input.
    [init] defaults to {!spf_params}; it must route every (router,
    destination) pair and be loop-free.

    [degrade] (default true) makes infeasible demand a reported
    condition instead of a divergence: the offered matrix is first
    capped at {!Mdr_fluid.Feasibility.report}'s uniform admissible
    fraction, and if the solver still fails to converge while some link
    runs past capacity, admission shrinks geometrically (x0.8, bounded
    tries) until it stabilises. The result then carries
    [status = Degraded _] and [admitted] holds the scaled matrix.
    [degrade:false] solves the offered matrix as-is (historic
    behaviour; saturation-safe costs keep even that finite). *)

val check_optimality :
  Mdr_fluid.Evaluate.model -> Mdr_fluid.Params.t -> Mdr_fluid.Flows.t ->
  Mdr_fluid.Traffic.t -> tolerance:float -> bool
(** Gallager's conditions (Eqs. 10-12) within [tolerance]: over each
    router's successor set the values l_ik + delta_kj are equal, and no
    non-successor offers a strictly smaller value. *)
