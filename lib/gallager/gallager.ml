module Graph = Mdr_topology.Graph
module Fluid = Mdr_fluid
module Params = Fluid.Params
module Flows = Fluid.Flows
module Traffic = Fluid.Traffic
module Evaluate = Fluid.Evaluate
module Delay = Fluid.Delay
module Feasibility = Fluid.Feasibility

type degradation = {
  admitted_fraction : float;
  shed : (Traffic.flow * float) list;
  per_destination : (int * float) list;
  reason : [ `Min_cut | `No_convergence ];
}

type status = Feasible | Degraded of degradation

type result = {
  params : Params.t;
  flows : Flows.t;
  total_cost : float;
  avg_delay : float;
  iterations : int;
  history : float list;
  converged : bool;
  status : status;
  admitted : Traffic.t;
}

let spf_params model topo =
  let params = Params.create topo in
  let n = Graph.node_count topo in
  let zero_flow_cost (l : Graph.link) =
    Delay.marginal (Evaluate.delay_of_link model ~src:l.src ~dst:l.dst) 0.0
  in
  let ws = Mdr_routing.Dijkstra.workspace () in
  for dst = 0 to n - 1 do
    let dist = Mdr_routing.Dijkstra.distances_to ~ws topo ~dst ~cost:zero_flow_cost in
    for node = 0 to n - 1 do
      if node <> dst then begin
        (* Best next hop: the neighbor minimising link cost + its
           distance, ties to the lower id (deterministic trees). *)
        let best =
          List.fold_left
            (fun best k ->
              let link = Graph.link_exn topo ~src:node ~dst:k in
              let d = zero_flow_cost link +. dist.(k) in
              match best with
              | Some (_, bd) when bd <= d -> best
              | _ -> if Float.is_finite d then Some (k, d) else best)
            None (Graph.neighbors topo node)
        in
        match best with
        | Some (k, _) -> Params.set_single params ~node ~dst ~via:k
        | None -> ()
      end
    done
  done;
  params

(* Improper nodes for a destination: a node is improper when one of its
   routed links goes uphill in marginal distance, or when some
   successor is improper. Blocking flow additions toward improper
   neighbors is Gallager's device for keeping successor graphs acyclic
   while delta evolves. *)
let improper_nodes params delta ~dst ~n =
  let improper = Array.make n false in
  let order = Flows.topological_order params ~dst in
  let mark node =
    if node <> dst then begin
      let succs = Params.successors params ~node ~dst in
      let uphill k = delta.(k) >= delta.(node) in
      if List.exists (fun k -> uphill k || improper.(k)) succs then
        improper.(node) <- true
    end
  in
  (* Successors resolve before the nodes that use them. *)
  List.iter mark (List.rev order);
  improper

let update_destination ?(second_order = false) ?delta_into model params flows
    ~eta ~dst =
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  let delta = Evaluate.marginal_distances ?into:delta_into model params flows ~dst in
  let improper = improper_nodes params delta ~dst ~n in
  let max_change = ref 0.0 in
  for node = 0 to n - 1 do
    if node <> dst then begin
      let nbrs = Params.neighbor_array params node in
      if Array.length nbrs > 0 then begin
        let through k =
          Evaluate.link_cost model flows ~src:node ~dst:k +. delta.(k)
        in
        let phi k = Params.fraction params ~node ~dst ~via:k in
        let blocked k =
          Float.equal (phi k) 0.0 && (delta.(k) >= delta.(node) || improper.(k))
        in
        let candidates = Array.to_list nbrs in
        let best =
          List.fold_left
            (fun best k ->
              if blocked k then best
              else
                let d = through k in
                match best with
                | Some (_, bd) when bd <= d -> best
                | _ -> if Float.is_finite d then Some (k, d) else best)
            None candidates
        in
        match best with
        | None -> ()
        | Some (kmin, dmin) ->
          let t_node = flows.Flows.node_flows.(node).(dst) in
          let moved = ref 0.0 in
          let entries =
            List.filter_map
              (fun k ->
                let p = phi k in
                if k = kmin || p <= 0.0 then None
                else begin
                  let reduction =
                    if t_node > 0.0 then begin
                      (* Second-order scaling (Bertsekas-Gallager):
                         normalise the step by the curvature of the
                         two links traded against each other, making
                         eta dimensionless and far less input-
                         dependent. *)
                      let scale =
                        if second_order then begin
                          (* Newton-style: d2(D_T)/d(phi)^2 ~ t^2 (D''_k
                             + D''_kmin); the gradient is t a_k, so the
                             step is a_k / (t (D''_k + D''_kmin)). *)
                          let second via =
                            let f =
                              match Hashtbl.find_opt flows.Flows.link_flows (node, via) with
                              | Some f -> f
                              | None -> 0.0
                            in
                            Delay.second
                              (Evaluate.delay_of_link model ~src:node ~dst:via)
                              f
                          in
                          Float.max 1e-12 (second k +. second kmin)
                        end
                        else 1.0
                      in
                      Float.min p (eta *. (through k -. dmin) /. (t_node *. scale))
                    end
                    else p (* no traffic: collapse onto the best hop *)
                  in
                  moved := !moved +. reduction;
                  let remaining = p -. reduction in
                  if remaining > 1e-12 then Some (k, remaining) else None
                end)
              candidates
          in
          let best_share = phi kmin +. !moved in
          let entries = (kmin, best_share) :: entries in
          (* Guard against drift before writing back. *)
          let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 entries in
          let entries = List.map (fun (k, f) -> (k, f /. total)) entries in
          max_change := Float.max !max_change !moved;
          Params.set_fractions params ~node ~dst entries
      end
    end
  done;
  !max_change

(* The gradient-projection loop itself, run on an (already admitted)
   traffic matrix; feasibility handling lives in [solve]. *)
let solve_admitted ~eta ~adaptive ~second_order ~max_iters ~tol ?init model topo
    traffic =
  if eta <= 0.0 then invalid_arg "Gallager.solve: eta <= 0";
  let params =
    match init with Some p -> Params.copy p | None -> spf_params model topo
  in
  let n = Graph.node_count topo in
  let destinations = List.filter (fun d -> d < n) (Traffic.destinations traffic) in
  let tol_move = Float.max tol 1e-8 in
  let cost_of p =
    let flows = Flows.compute ~iterative_fallback:true p traffic in
    (flows, Evaluate.total_cost model flows)
  in
  (* One marginal-distance buffer serves every destination of every
     iteration; [marginal_distances] overwrites it in full. *)
  let delta_buf = Array.make n infinity in
  let apply p flows step =
    List.fold_left
      (fun acc dst ->
        Float.max acc
          (update_destination ~second_order ~delta_into:delta_buf model p flows
             ~eta:step ~dst))
      0.0 destinations
  in
  let eta_floor = eta *. 1e-12 in
  let history = ref [] in
  let cur_eta = ref eta in
  let finished = ref false in
  let iterations = ref 0 in
  let converged = ref false in
  while not !finished && !iterations < max_iters do
    incr iterations;
    let flows, cost = cost_of params in
    history := cost :: !history;
    if adaptive then begin
      (* Backtracking line search: keep halving the step until the
         update strictly descends, restoring the parameters between
         attempts. The objective is convex, so a small enough step
         always descends unless we are at the optimum. *)
      let saved = Params.copy params in
      let rec attempt step =
        let moved = apply params flows step in
        if moved < tol_move then begin
          converged := true;
          finished := true
        end
        else begin
          let _, new_cost = cost_of params in
          if new_cost < cost then
            (* Successful step: let the step size recover. *)
            cur_eta := Float.min eta (step *. 1.5)
          else if step <= eta_floor then begin
            converged := true;
            finished := true
          end
          else begin
            (* Restore and retry with half the step. *)
            Params.assign params ~from_:saved;
            attempt (step /. 2.0)
          end
        end
      in
      attempt !cur_eta
    end
    else begin
      (* Pure Gallager: fixed global step, no safeguards (ABL-ETA). *)
      let moved = apply params flows eta in
      if moved < tol_move then begin
        converged := true;
        finished := true
      end
    end
  done;
  let flows = Flows.compute ~iterative_fallback:true params traffic in
  (params, flows, !iterations, List.rev !history, !converged)

let finish model (params, flows, iterations, history, converged) ~status ~admitted =
  {
    params;
    flows;
    total_cost = Evaluate.total_cost model flows;
    avg_delay = Evaluate.average_delay model flows admitted;
    iterations;
    history;
    converged;
    status;
    admitted;
  }

let solve ?(eta = 1.0e4) ?(adaptive = true) ?(second_order = false)
    ?(max_iters = 2000) ?(tol = 1e-9) ?(degrade = true) ?init model topo traffic =
  let run traffic =
    solve_admitted ~eta ~adaptive ~second_order ~max_iters ~tol ?init model topo
      traffic
  in
  if not degrade then finish model (run traffic) ~status:Feasible ~admitted:traffic
  else begin
    let packet_size = Evaluate.packet_size model in
    let report = Feasibility.report topo ~packet_size traffic in
    (* Shrink only on clear divergence: the run neither converged nor
       stayed within capacity. A feasible run that merely hit
       [max_iters] at utilisation <= 1 is not degraded. *)
    let diverged ((params, flows, _, _, converged) : Params.t * Flows.t * _ * _ * bool)
        =
      (not converged) && Flows.max_utilization params flows ~packet_size > 1.0
    in
    let rec attempt alpha reason tries =
      let admitted =
        if alpha >= 1.0 then traffic else Traffic.scale traffic alpha
      in
      let r = run admitted in
      if diverged r && tries > 0 && alpha > 1e-6 then
        attempt (alpha *. 0.8) `No_convergence (tries - 1)
      else begin
        let status =
          if alpha >= 1.0 then Feasible
          else
            Degraded
              {
                admitted_fraction = alpha;
                shed =
                  List.map
                    (fun (f : Traffic.flow) -> (f, 1.0 -. alpha))
                    (Traffic.flows traffic);
                per_destination = report.Feasibility.per_destination;
                reason;
              }
        in
        finish model r ~status ~admitted
      end
    in
    if Feasibility.feasible report then attempt 1.0 `Min_cut 6
    else attempt report.Feasibility.fraction `Min_cut 6
  end

let check_optimality model params flows traffic ~tolerance =
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  let ok = ref true in
  let delta_buf = Array.make n infinity in
  let check_destination dst =
    let delta = Evaluate.marginal_distances ~into:delta_buf model params flows ~dst in
    for node = 0 to n - 1 do
      if node <> dst && flows.Flows.node_flows.(node).(dst) > 1e-9 then begin
        let through k =
          Evaluate.link_cost model flows ~src:node ~dst:k +. delta.(k)
        in
        let succs = Params.successors params ~node ~dst in
        let values = List.map through succs in
        match values with
        | [] -> ok := false
        | v0 :: rest ->
          let lo = List.fold_left Float.min v0 rest in
          let hi = List.fold_left Float.max v0 rest in
          (* Successor marginals must agree (Eq. 11)... *)
          if hi -. lo > tolerance *. Float.max 1.0 lo then ok := false;
          (* ...and no outside neighbor may beat them (Eq. 12). *)
          List.iter
            (fun k ->
              if not (List.mem k succs) then
                let v = through k in
                if Float.is_finite v && v < lo -. (tolerance *. Float.max 1.0 lo)
                then ok := false)
            (Array.to_list (Params.neighbor_array params node))
      end
    done
  in
  List.iter check_destination (Traffic.destinations traffic);
  !ok
