(* One report module for both static passes.

   [Lint_rules] (syntactic, per-file) and [Check_rules] (whole-program
   effect analysis) produce the same shape of result: findings with a
   rule id and a location, plus allowlist bookkeeping. Rendering —
   human text, the machine JSON report, and SARIF 2.1.0 for GitHub
   code scanning — lives here once so the two passes cannot drift. *)

type finding = {
  rule : string;
  file : string;  (* relative to the scan root *)
  line : int;
  col : int;
  message : string;
}

type stale = {
  stale_rule : string;
  stale_file : string;
  stale_line : int option;
}

type rule_info = { rule_id : string; about : string }

type t = {
  tool : string;  (* "lint" or "check"; prefixes the summary line *)
  files_scanned : int;
  findings : finding list;  (* after allowlisting *)
  suppressed : int;  (* allowlisted hits *)
  stale_allow : stale list;  (* allowlist entries that matched nothing *)
  rule_infos : rule_info list;  (* one per rule, for SARIF metadata *)
}

let clean t = t.findings = [] && t.stale_allow = []

(* --- Allowlists -------------------------------------------------------- *)

type allow = { allow_file : string; allow_line : int option }

let parse_allow_line s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then None
  else
    match String.rindex_opt s ':' with
    | Some i -> (
      let path = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt tail with
      | Some line ->
        Some { allow_file = Source_walk.normalize path; allow_line = Some line }
      | None -> Some { allow_file = Source_walk.normalize s; allow_line = None })
    | None -> Some { allow_file = Source_walk.normalize s; allow_line = None }

let load_allowlist ~allow_dir rule_name =
  let path = Filename.concat allow_dir (rule_name ^ ".allow") in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         match parse_allow_line (input_line ic) with
         | Some a -> entries := a :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let allow_matches a (v : finding) =
  a.allow_file = Source_walk.normalize v.file
  && match a.allow_line with None -> true | Some l -> l = v.line

(* Partition raw findings into kept and suppressed, and flag stale
   allowlist entries. An entry that suppresses nothing is a failure
   too: the code it excused was fixed or moved, and keeping the entry
   would silently excuse the *next* violation at that spot. *)
let apply_allowlists ~allow_dir ~rule_names all =
  let allows = List.map (fun r -> (r, load_allowlist ~allow_dir r)) rule_names in
  let allows_for rule = try List.assoc rule allows with Not_found -> [] in
  let kept, suppressed =
    List.partition
      (fun v -> not (List.exists (fun a -> allow_matches a v) (allows_for v.rule)))
      all
  in
  let stale_allow =
    List.concat_map
      (fun (rule_name, entries) ->
        List.filter_map
          (fun a ->
            if List.exists (fun v -> v.rule = rule_name && allow_matches a v) all
            then None
            else
              Some
                {
                  stale_rule = rule_name;
                  stale_file = a.allow_file;
                  stale_line = a.allow_line;
                })
          entries)
      allows
  in
  (kept, List.length suppressed, stale_allow)

(* --- Text rendering ---------------------------------------------------- *)

let render_finding v =
  Printf.sprintf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

let render_stale s =
  Printf.sprintf "lint/%s.allow: stale entry %s%s (suppresses nothing; remove it)"
    s.stale_rule s.stale_file
    (match s.stale_line with None -> "" | Some l -> Printf.sprintf ":%d" l)

let render t =
  let b = Buffer.create 256 in
  List.iter (fun v -> Buffer.add_string b (render_finding v ^ "\n")) t.findings;
  List.iter (fun s -> Buffer.add_string b (render_stale s ^ "\n")) t.stale_allow;
  Buffer.add_string b
    (Printf.sprintf
       "%s: %d file(s), %d violation(s), %d allowlisted, %d stale allowlist entr%s\n"
       t.tool t.files_scanned
       (List.length t.findings)
       t.suppressed
       (List.length t.stale_allow)
       (if List.length t.stale_allow = 1 then "y" else "ies"));
  Buffer.contents b

(* --- JSON -------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let finding v =
    Printf.sprintf
      {|    {"rule": "%s", "file": "%s", "line": %d, "col": %d, "message": "%s"}|}
      (json_escape v.rule) (json_escape v.file) v.line v.col (json_escape v.message)
  in
  let stale s =
    Printf.sprintf {|    {"rule": "%s", "file": "%s", "line": %s}|}
      (json_escape s.stale_rule) (json_escape s.stale_file)
      (match s.stale_line with None -> "null" | Some l -> string_of_int l)
  in
  Printf.sprintf
    "{\n\
    \  \"tool\": \"%s\",\n\
    \  \"files_scanned\": %d,\n\
    \  \"suppressed\": %d,\n\
    \  \"violations\": [\n\
     %s\n\
    \  ],\n\
    \  \"stale_allow\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (json_escape t.tool) t.files_scanned t.suppressed
    (String.concat ",\n" (List.map finding t.findings))
    (String.concat ",\n" (List.map stale t.stale_allow))

(* --- SARIF 2.1.0 ------------------------------------------------------- *)

(* Minimal but valid SARIF for GitHub code scanning: one run, the
   rules as reportingDescriptors, one result per finding. Stale
   allowlist entries are reported as results of a synthetic
   [stale-allowlist-entry] rule so a stale waiver fails the scan the
   same way a violation does. *)
let to_sarif t =
  let rule_descriptor r =
    Printf.sprintf
      {|          {"id": "%s", "shortDescription": {"text": "%s"}}|}
      (json_escape r.rule_id) (json_escape r.about)
  in
  let stale_rule =
    {
      rule_id = "stale-allowlist-entry";
      about = "allowlist entry that no longer suppresses anything; remove it";
    }
  in
  let result ~rule ~file ~line ~col ~message =
    Printf.sprintf
      {|        {"ruleId": "%s", "level": "error", "message": {"text": "%s"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "%s"}, "region": {"startLine": %d, "startColumn": %d}}}]}|}
      (json_escape rule) (json_escape message) (json_escape file) (max 1 line)
      (max 1 (col + 1))
  in
  let results =
    List.map
      (fun v -> result ~rule:v.rule ~file:v.file ~line:v.line ~col:v.col ~message:v.message)
      t.findings
    @ List.map
        (fun s ->
          result ~rule:stale_rule.rule_id
            ~file:(Printf.sprintf "lint/%s.allow" s.stale_rule)
            ~line:1 ~col:0
            ~message:
              (Printf.sprintf "stale entry %s%s suppresses nothing; remove it"
                 s.stale_file
                 (match s.stale_line with
                 | None -> ""
                 | Some l -> Printf.sprintf ":%d" l)))
        t.stale_allow
  in
  Printf.sprintf
    "{\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"mdrsim-%s\",\n\
    \          \"informationUri\": \"https://github.com/\",\n\
    \          \"rules\": [\n%s\n\
    \          ]\n\
    \        }\n\
    \      },\n\
    \      \"results\": [\n%s\n\
    \      ]\n\
    \    }\n\
    \  ]\n\
     }\n"
    (json_escape t.tool)
    (String.concat ",\n" (List.map rule_descriptor (t.rule_infos @ [ stale_rule ])))
    (String.concat ",\n" results)
