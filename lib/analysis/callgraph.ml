(* Whole-program call-graph substrate for [Check_rules].

   [Lint_rules] is deliberately per-file; the cross-module rules need
   to know, for an identifier like [Pool.map_array] appearing in
   [lib/faults/campaign.ml], *which function definition in the repo*
   it denotes. This module parses every scanned source file, assigns
   each top-level binding a canonical id ([Mdr_util.Pool.map_array]
   for a module wrapped by a dune library, [Mdrsim.main] for an
   executable module), and resolves [Longident]s against:

   - file-local module aliases ([module Pool = Mdr_util.Pool]),
   - sibling modules of the same dune library (inside [lib/util],
     [Pool.x] means [Mdr_util.Pool.x]),
   - library-qualified paths from anywhere,
   - top-level [open]s,
   - nested [module M = struct ... end] definitions (qualified as
     [Lib.Mod.M.f]).

   Anything that resolves to no definition in the scanned tree is
   [External] — the stdlib and friends — and is interpreted by
   [Effects]' primitive table. Resolution is name-based, not
   type-based: functors, first-class modules and shadowing tricks are
   out of scope (and absent from this codebase, which the fixture
   tests pin down). *)

open Parsetree

type def = {
  id : string;  (* canonical: "Mdr_util.Pool.map_array" *)
  file : string;  (* root-relative *)
  line : int;
  col : int;
  params : (Asttypes.arg_label * string option) list;
      (* the peeled fun-chain: label and variable name (None for
         non-variable patterns) *)
  body : expression;  (* after peeling the fun chain *)
  full : expression;  (* the whole bound expression *)
}

type file_ctx = {
  file : string;
  modpath : string;  (* canonical module path, e.g. "Mdr_util.Pool" *)
  lib_prefix : string option;  (* "Mdr_util" for wrapped modules *)
  aliases : (string * Longident.t) list;  (* module X = Path *)
  opens : string list;  (* flattened top-level opens *)
}

type t = {
  defs : (string, def) Hashtbl.t;
  def_order : string list;  (* deterministic iteration order *)
  ctxs : (file_ctx * structure) list;
  siblings : (string, unit) Hashtbl.t;  (* "Lib.Module" membership *)
}

let flatten li = String.concat "." (Longident.flatten li)

let rec head_of = function
  | Longident.Lident x -> Some x
  | Longident.Ldot (l, _) -> head_of l
  | Longident.Lapply _ -> None

let rec replace_head li repl =
  match li with
  | Longident.Lident _ -> repl
  | Longident.Ldot (l, s) -> Longident.Ldot (replace_head l repl, s)
  | Longident.Lapply _ -> li

let expand_aliases aliases li =
  match head_of li with
  | Some h -> (
    match List.assoc_opt h aliases with
    | Some repl -> replace_head li repl
    | None -> li)
  | None -> li

(* --- Definition extraction --------------------------------------------- *)

let rec var_of_pat p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> var_of_pat p
  | Ppat_alias (p, _) -> var_of_pat p
  | _ -> None

let rec peel_params acc e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) -> peel_params ((lbl, var_of_pat pat) :: acc) body
  | Pexp_newtype (_, body) -> peel_params acc body
  | _ -> (List.rev acc, e)

let loc_of (l : Location.t) =
  (l.loc_start.pos_lnum, l.loc_start.pos_cnum - l.loc_start.pos_bol)

(* Walk one structure, qualifying definitions under [prefix] and
   accumulating aliases/opens into the file-level lists. Aliases from
   nested modules are hoisted to file scope — collisions would need
   two same-named aliases in one file, which the codebase doesn't
   do. *)
let rec collect_structure ~prefix ~add_def ~add_alias ~add_open structure =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            match var_of_pat vb.pvb_pat with
            | Some name ->
              let params, body = peel_params [] vb.pvb_expr in
              let line, col = loc_of vb.pvb_loc in
              add_def
                ~id:(prefix ^ "." ^ name)
                ~line ~col ~params ~body ~full:vb.pvb_expr
            | None ->
              (* [let () = ...] / [let _ = ...] driver code (examples,
                 executables) still gets scanned by the rules: give it
                 a synthetic id no identifier can resolve to. *)
              let params, body = peel_params [] vb.pvb_expr in
              let line, col = loc_of vb.pvb_loc in
              add_def
                ~id:(Printf.sprintf "%s.(unit:%d)" prefix line)
                ~line ~col ~params ~body ~full:vb.pvb_expr)
          bindings
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> add_alias (name, txt)
        | Pmod_structure inner ->
          collect_structure ~prefix:(prefix ^ "." ^ name) ~add_def ~add_alias
            ~add_open inner
        | _ -> ())
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
        add_open (flatten txt)
      | _ -> ())
    structure

let build ?(dirs = Source_walk.default_dirs) ~root () =
  let files = Source_walk.files ~dirs ~root () in
  let defs = Hashtbl.create 512 in
  let def_order = ref [] in
  let siblings = Hashtbl.create 64 in
  let ctxs =
    List.map
      (fun (path, file) ->
        let structure = Source_walk.parse_file path in
        let modpath = Source_walk.canonical_module ~root path in
        let lib_prefix =
          match String.index_opt modpath '.' with
          | Some i -> Some (String.sub modpath 0 i)
          | None -> None
        in
        Hashtbl.replace siblings modpath ();
        let aliases = ref [] and opens = ref [] in
        collect_structure ~prefix:modpath
          ~add_def:(fun ~id ~line ~col ~params ~body ~full ->
            if not (Hashtbl.mem defs id) then def_order := id :: !def_order;
            (* Later bindings shadow earlier ones of the same name;
               keep the last, which is the one the rest of the module
               sees. *)
            Hashtbl.replace defs id { id; file; line; col; params; body; full })
          ~add_alias:(fun a -> aliases := a :: !aliases)
          ~add_open:(fun o -> opens := o :: !opens)
          structure;
        ( { file; modpath; lib_prefix; aliases = List.rev !aliases; opens = List.rev !opens },
          structure ))
      files
  in
  { defs; def_order = List.rev !def_order; ctxs; siblings }

let find_def t id = Hashtbl.find_opt t.defs id

(* --- Resolution -------------------------------------------------------- *)

type resolved =
  | Def of def
  | External of string  (* flattened path after alias expansion *)

let resolve ?(extra_aliases = []) t ~ctx li =
  let li = expand_aliases (extra_aliases @ ctx.aliases) li in
  let joined = flatten li in
  let candidates =
    (* Most-local first: same module, sibling module of the same
       library, absolute path, then through each top-level open. *)
    (ctx.modpath ^ "." ^ joined)
    ::
    (match (ctx.lib_prefix, head_of li) with
    | Some lib, Some h when Hashtbl.mem t.siblings (lib ^ "." ^ h) ->
      [ lib ^ "." ^ joined ]
    | _ -> [])
    @ [ joined ]
    @ List.map (fun o -> o ^ "." ^ joined) ctx.opens
  in
  match List.find_map (fun c -> Hashtbl.find_opt t.defs c) candidates with
  | Some d -> Def d
  | None -> External joined
