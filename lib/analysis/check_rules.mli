(** Cross-module rules over {!Callgraph} + {!Effects}: the
    [mdrsim check] pass.

    Three rule families — [domain-race] (closures handed to
    [Mdr_util.Pool] fan-outs must not share mutable captured state
    across domains or depend on process-global nondeterminism),
    [determinism-taint] (no nondeterminism source may reach a
    fingerprint/digest/encode sink through any call chain), and
    [crash-safety] (server write paths must not swallow I/O errors
    and must fsync before rename). Allowlists follow the
    [lint/<rule>.allow] convention shared with {!Lint_rules}. *)

type config = {
  pool_fns : (string * string) list;
      (** fan-out entry point id -> name of its task parameter *)
  sinks : string list;  (** determinism sink def ids *)
  crash_scope : string list;  (** file prefixes for crash-safety *)
}

val default_config : config
(** [Mdr_util.Pool.{map_array,mapi_array,init,map_list}] with task
    parameter [f]; the router/campaign/server fingerprint, digest and
    encode functions as sinks; crash-safety scoped to [lib/server/]
    and [lib/wire/]. *)

val rules : (string * string) list
(** (rule name, one-line description) — [domain-race],
    [determinism-taint], [crash-safety]. *)

val run :
  ?dirs:string list ->
  ?allow_dir:string ->
  ?config:config ->
  root:string ->
  unit ->
  Report.t
(** Build the call graph over [root/dirs] (default
    {!Source_walk.default_dirs}), run the effect analysis and all
    three rule families, apply allowlists, and return the shared
    report ([tool = "check"]). Findings are sorted by file, line,
    column.
    @raise Source_walk.Parse_failure if a scanned file does not
    parse. *)
