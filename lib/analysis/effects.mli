(** Conservative per-function effect summaries and whole-program
    propagation over {!Callgraph}.

    Each definition gets *facts* (primitive effects, mutations and
    call sites found in its body) and a *summary* (the facts plus
    everything inherited from callees at a fixpoint). Summaries carry
    witness origins so findings can point at the primitive use that
    introduced an effect, however deep in the call graph.

    Known unsoundness, pinned down by the fixture tests: functions
    passed as values propagate nondeterminism/IO/raise but not
    parameter mutations (the argument mapping is unknown), and
    mutation through values returned by calls is not tracked.
    [Mdr_util.Sorted_tbl] is the sanctioned determinism barrier and
    is scrubbed of nondet sources; [Atomic] operations never count as
    mutations. *)

type nondet_kind =
  | Hashtbl_order  (** [Hashtbl.iter]/[fold]/[to_seq*]: bucket order *)
  | Random_state  (** [Random.*]: process-global PRNG *)
  | Wall_clock  (** [Sys.time], [Unix.gettimeofday], ... *)
  | Physical_eq  (** [==] / [!=] *)
  | Marshal_repr  (** [Marshal.*]: representation-dependent bytes *)

val kind_name : nondet_kind -> string

type prim_loc = { p_name : string; p_file : string; p_line : int; p_col : int }

type origin =
  | Prim of prim_loc  (** the primitive use itself *)
  | Via of string  (** inherited from this callee *)

type summary = {
  mutable nondet : (nondet_kind * origin) list;  (** one origin per kind *)
  mutable mutates_global : origin option;
  mutable mutated_params : (string * origin) list;
      (** parameters (by name) this function mutates *)
  mutable io : origin option;
  mutable may_raise : bool;
  mutable calls_fsync : bool;
  mutable calls_rename : bool;
}

(** {2 Facts — what one expression does directly} *)

type root =
  | Local  (** bound inside the walked expression *)
  | Outer of string  (** one of the walk's starting parameters *)
  | Global of string  (** module-level value: def id or external path *)
  | Free of string  (** captured from an enclosing scope *)
  | Anon  (** complex expression; not tracked *)

type mutation = {
  m_root : root;
  m_atomic : bool;
  m_what : string;
  m_line : int;
  m_col : int;
}

type callsite = {
  c_callee : string;
  c_args : (string * root * Parsetree.expression) list;
      (** callee parameter name, argument root, argument expression *)
  c_line : int;
  c_col : int;
}

type event = E_fsync | E_rename of int * int | E_call of string * int * int

type try_site = {
  t_io_direct : bool;
  t_callees : string list;
  t_swallows : (string * int * int) list;
      (** pattern description ("catch-all" / "Sys_error" / "Unix_error")
          and its location, for handlers that do not re-raise *)
}

type facts = {
  f_file : string;
  mutable nondet_prims : (nondet_kind * prim_loc) list;
  mutable io_prims : prim_loc list;
  mutable raises : bool;
  mutable global_mut_prims : prim_loc list;
  mutable mutations : mutation list;
  mutable calls : callsite list;
  mutable refs : (string * int * int) list;
  mutable events : event list;  (** syntactic traversal order *)
  mutable tries : try_site list;
}

val scan_expr :
  Callgraph.t ->
  ctx:Callgraph.file_ctx ->
  params:string list ->
  Parsetree.expression ->
  facts
(** One intraprocedural pass. [params] are the names bound at walk
    start (a definition's parameters, or a closure's); identifiers
    outside them that resolve to nothing are classified {!Free} —
    captures, when the expression is a closure. *)

(** {2 Whole-program analysis} *)

type t

val default_sanitizers : string list
(** Id prefixes whose summaries are scrubbed of nondet sources
    (default [Mdr_util.Sorted_tbl.]). *)

val analyze : ?sanitizers:string list -> Callgraph.t -> t

val summary_of : t -> string -> summary option
val facts_of : t -> string -> facts option

val nondet_chain : t -> string -> nondet_kind -> string list * prim_loc option
(** [nondet_chain t id kind] follows [Via] origins from [id] down to
    the primitive witness: the call chain walked, and the primitive if
    the chain is complete. *)

val global_mut_chain : t -> string -> string list * prim_loc option
