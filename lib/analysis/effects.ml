(* Conservative per-function effect summaries over the whole program.

   For every definition [Callgraph] knows about, one bottom-up pass
   computes what the body does directly (the *facts*: primitive
   effects, mutations, call sites in evaluation order), and a fixpoint
   then propagates summaries over the call graph:

   - nondeterminism sources, each with a witness chain back to the
     primitive use: [Hashtbl.iter]/[fold] (bucket order), [Random]
     (process-global PRNG), wall clocks ([Sys.time],
     [Unix.gettimeofday]), physical equality ([==]/[!=]), [Marshal]
     (representation-dependent bytes);
   - [mutates_global]: writes module-level mutable state (a top-level
     [ref]/[Hashtbl]/[Buffer]/array), directly or through a callee;
   - [mutated_params]: which of the function's own parameters it
     mutates — propagated through call sites by matching arguments to
     parameters, which is what lets the domain-race rule see that a
     closure handing a *captured* value to such a parameter shares
     mutable state across domains;
   - I/O, may-raise, and the [fsync]/[rename] markers the
     crash-safety rule orders.

   The analysis is name-based and unsound by design where OCaml is
   hard: functions passed as values propagate their nondet/IO but not
   their parameter mutations (the argument mapping is unknown), and
   mutation through a value returned by a call is not tracked. The
   fixture tests in [test/test_analysis.ml] pin down exactly which
   patterns the rules do catch. [Mdr_util.Sorted_tbl] is the
   sanctioned determinism barrier: it iterates hash tables internally
   but sorts, so its summaries are scrubbed of the Hashtbl-order
   source. [Atomic] operations are likewise exempt from the mutation
   effects — they are the sanctioned cross-domain mechanism. *)

open Parsetree

type nondet_kind =
  | Hashtbl_order
  | Random_state
  | Wall_clock
  | Physical_eq
  | Marshal_repr

let kind_name = function
  | Hashtbl_order -> "hashtbl-order"
  | Random_state -> "random-state"
  | Wall_clock -> "wall-clock"
  | Physical_eq -> "physical-eq"
  | Marshal_repr -> "marshal-repr"

type prim_loc = { p_name : string; p_file : string; p_line : int; p_col : int }

type origin = Prim of prim_loc | Via of string  (* callee def id *)

type summary = {
  mutable nondet : (nondet_kind * origin) list;  (* at most one origin per kind *)
  mutable mutates_global : origin option;
  mutable mutated_params : (string * origin) list;
  mutable io : origin option;
  mutable may_raise : bool;
  mutable calls_fsync : bool;
  mutable calls_rename : bool;
}

(* --- Primitive effect table -------------------------------------------- *)

type prim_effect =
  | P_nondet of nondet_kind
  | P_io
  | P_raise
  | P_fsync
  | P_rename
  | P_mut of int * bool  (* index among Nolabel arguments; atomic? *)
  | P_global_mut  (* mutates hidden process-global state *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let prims_of name =
  let name =
    if starts_with ~prefix:"Stdlib." name then
      String.sub name 7 (String.length name - 7)
    else name
  in
  match name with
  | "Hashtbl.iter" | "Hashtbl.fold" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
  | "Hashtbl.to_seq_values" ->
    [ P_nondet Hashtbl_order ]
  | "Sys.time" | "Unix.time" | "Unix.gettimeofday" | "Unix.times" ->
    [ P_nondet Wall_clock ]
  | "==" | "!=" -> [ P_nondet Physical_eq ]
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" -> [ P_raise ]
  | "Unix.fsync" -> [ P_io; P_fsync ]
  | "Sys.rename" | "Unix.rename" -> [ P_io; P_rename ]
  | ":=" | "incr" | "decr" -> [ P_mut (0, false) ]
  | "Array.set" | "Array.unsafe_set" | "Array.fill" | "Bytes.set"
  | "Bytes.unsafe_set" | "Bytes.fill" ->
    [ P_mut (0, false) ]
  | "Array.blit" | "Bytes.blit" | "Bytes.blit_string" -> [ P_mut (2, false) ]
  | "Array.sort" | "Array.stable_sort" | "Array.fast_sort" -> [ P_mut (1, false) ]
  | "Hashtbl.add" | "Hashtbl.replace" | "Hashtbl.remove" | "Hashtbl.reset"
  | "Hashtbl.clear" ->
    [ P_mut (0, false) ]
  | "Hashtbl.filter_map_inplace" -> [ P_mut (1, false) ]
  | "Queue.add" | "Queue.push" | "Queue.pop" | "Queue.take" | "Queue.clear" ->
    [ P_mut (0, false) ]
  | "Queue.transfer" -> [ P_mut (0, false); P_mut (1, false) ]
  | "Stack.push" -> [ P_mut (1, false) ]
  | "Stack.pop" | "Stack.clear" -> [ P_mut (0, false) ]
  | "Buffer.clear" | "Buffer.reset" | "Buffer.truncate" -> [ P_mut (0, false) ]
  | "Printf.bprintf" -> [ P_mut (0, false) ]
  | "Atomic.set" | "Atomic.exchange" | "Atomic.compare_and_set"
  | "Atomic.fetch_and_add" | "Atomic.incr" | "Atomic.decr" ->
    [ P_mut (0, true) ]
  | "print_endline" | "print_string" | "print_newline" | "print_int"
  | "print_float" | "print_char" | "prerr_endline" | "prerr_string"
  | "prerr_newline" | "print_bytes" | "prerr_bytes" ->
    [ P_io ]
  | "Printf.printf" | "Printf.eprintf" | "Printf.fprintf" | "Format.printf"
  | "Format.eprintf" | "Format.fprintf" | "Format.print_string"
  | "Format.print_newline" ->
    [ P_io ]
  | "Sys.remove" | "Sys.command" | "Sys.readdir" | "Sys.mkdir" | "Sys.rmdir"
  | "Sys.chdir" | "Sys.getcwd" | "Digest.file" | "Filename.temp_file" ->
    [ P_io ]
  | _ ->
    if starts_with ~prefix:"Random." name then [ P_nondet Random_state; P_global_mut ]
    else if starts_with ~prefix:"Marshal." name then [ P_nondet Marshal_repr ]
    else if starts_with ~prefix:"Buffer.add" name then [ P_mut (0, false) ]
    else if starts_with ~prefix:"Unix." name then [ P_io ]
    else if
      starts_with ~prefix:"open_in" name
      || starts_with ~prefix:"open_out" name
      || starts_with ~prefix:"close_in" name
      || starts_with ~prefix:"close_out" name
      || starts_with ~prefix:"output" name
      || starts_with ~prefix:"input" name
      || starts_with ~prefix:"really_input" name
      || starts_with ~prefix:"read_line" name
    then [ P_io ]
    else []

(* --- Facts: what one expression does directly --------------------------- *)

module SSet = Set.Make (String)

type root =
  | Local  (* bound inside the walked expression *)
  | Outer of string  (* one of the walk's starting parameters *)
  | Global of string  (* module-level value: resolved def id or external path *)
  | Free of string  (* unqualified, unbound, unresolved: captured from an
                       enclosing scope (only closures have these) *)
  | Anon  (* a complex expression; not tracked *)

type mutation = {
  m_root : root;
  m_atomic : bool;
  m_what : string;  (* the operator, for messages *)
  m_line : int;
  m_col : int;
}

type callsite = {
  c_callee : string;  (* resolved def id *)
  c_args : (string * root * expression) list;  (* callee param name, arg root, arg *)
  c_line : int;
  c_col : int;
}

type event = E_fsync | E_rename of int * int | E_call of string * int * int

type try_site = {
  t_io_direct : bool;
  t_callees : string list;  (* called or referenced from the try body *)
  t_swallows : (string * int * int) list;  (* pattern description, loc *)
}

type facts = {
  f_file : string;
  mutable nondet_prims : (nondet_kind * prim_loc) list;
  mutable io_prims : prim_loc list;
  mutable raises : bool;
  mutable global_mut_prims : prim_loc list;
  mutable mutations : mutation list;
  mutable calls : callsite list;
  mutable refs : (string * int * int) list;  (* def ids used as values *)
  mutable events : event list;  (* reversed; evaluation-ish order *)
  mutable tries : try_site list;
}

type env = { ctx : Callgraph.file_ctx; locals : SSet.t; outer : SSet.t }

let loc_of (l : Location.t) =
  (l.loc_start.pos_lnum, l.loc_start.pos_cnum - l.loc_start.pos_bol)

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (txt :: acc) p
  | Ppat_tuple ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p)) -> pat_vars acc p
  | Ppat_variant (_, Some p) -> pat_vars acc p
  | Ppat_record (fields, _) -> List.fold_left (fun a (_, p) -> pat_vars a p) acc fields
  | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p) ->
    pat_vars acc p
  | _ -> acc

let bind env p = { env with locals = List.fold_left (fun s v -> SSet.add v s) env.locals (pat_vars [] p) }

let longident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* The storage root of an lvalue-ish expression: peel field accesses,
   derefs, indexing and type constraints down to the base identifier. *)
let rec root_of graph env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
    if SSet.mem x env.locals then Local
    else if SSet.mem x env.outer then Outer x
    else (
      match Callgraph.resolve graph ~ctx:env.ctx (Longident.Lident x) with
      | Callgraph.Def d -> Global d.id
      | Callgraph.External _ -> Free x)
  | Pexp_ident { txt; _ } -> (
    match Callgraph.resolve graph ~ctx:env.ctx txt with
    | Callgraph.Def d -> Global d.id
    | Callgraph.External s -> Global s)
  | Pexp_field (e, _) -> root_of graph env e
  | Pexp_constraint (e, _) -> root_of graph env e
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
        [ (_, a) ] ) ->
    root_of graph env a
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt; _ }; _ },
        (Asttypes.Nolabel, a) :: _ )
    when (match Callgraph.flatten txt with
         | "Array.get" | "Array.unsafe_get" | "Bytes.get" | "Atomic.get" -> true
         | _ -> false) ->
    root_of graph env a
  | _ -> Anon

(* Map call-site arguments to callee parameter names: labelled args by
   label, unlabelled args to the callee's Nolabel parameters in
   order. Unnamed parameters are skipped. *)
let map_args (callee : Callgraph.def) args =
  let nolabels =
    List.filter_map
      (function Asttypes.Nolabel, n -> Some n | _ -> None)
      callee.params
  in
  let labelled s =
    List.find_map
      (function
        | (Asttypes.Labelled s' | Asttypes.Optional s'), n when s' = s -> n
        | _ -> None)
      callee.params
  in
  let rec go nolabels acc = function
    | [] -> List.rev acc
    | (Asttypes.Nolabel, e) :: rest -> (
      match nolabels with
      | n :: tl ->
        (match n with
        | Some name -> go tl ((name, e) :: acc) rest
        | None -> go tl acc rest)
      | [] -> go [] acc rest)
    | ((Asttypes.Labelled s | Asttypes.Optional s), e) :: rest -> (
      match labelled s with
      | Some name -> go nolabels ((name, e) :: acc) rest
      | None -> go nolabels acc rest)
  in
  go nolabels [] args

let is_catch_all case =
  (match case.pc_lhs.ppat_desc with
  | Ppat_any -> true
  | Ppat_var _ -> true
  | _ -> false)
  && case.pc_guard = None

let swallow_pattern case =
  (* A case that intercepts I/O failures broadly: catch-all, a
     [Sys_error] match, or [Unix_error] with a wildcard errno.
     [Unix_error (EEXIST, _, _)]-style patterns name one specific
     errno and are targeted handling, not a swallow. *)
  if is_catch_all case then Some "catch-all"
  else
    let errno_is_specific arg =
      let rec tuple_head p =
        match p.ppat_desc with
        | Ppat_tuple (hd :: _) -> tuple_head hd
        | Ppat_constraint (p, _) | Ppat_alias (p, _) -> tuple_head p
        | Ppat_construct _ -> true
        | _ -> false
      in
      tuple_head arg
    in
    let rec of_pat p =
      match p.ppat_desc with
      | Ppat_construct ({ txt; _ }, arg) -> (
        match Longident.last txt with
        | "Sys_error" -> Some "Sys_error"
        | "Unix_error" -> (
          match arg with
          | Some (_, a) when errno_is_specific a -> None
          | _ -> Some "Unix_error")
        | _ -> None)
      | Ppat_or (a, b) -> ( match of_pat a with Some s -> Some s | None -> of_pat b)
      | Ppat_alias (p, _) | Ppat_constraint (p, _) -> of_pat p
      | _ -> None
    in
    of_pat case.pc_lhs

(* Does the handler body re-raise (or escalate)? A handler that turns
   the error into [failwith]/[raise]/[exit] has not swallowed it. *)
let rec reraises e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match Longident.last txt with
    | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" -> true
    | _ -> sub_reraises e)
  | _ -> sub_reraises e

and sub_reraises e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
            match Longident.last txt with
            | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" ->
              found := true
            | _ -> ())
          | _ -> ());
          super.expr self e);
    }
  in
  it.expr it e;
  !found

let scan_expr graph ~(ctx : Callgraph.file_ctx) ~params expr =
  let facts =
    {
      f_file = ctx.file;
      nondet_prims = [];
      io_prims = [];
      raises = false;
      global_mut_prims = [];
      mutations = [];
      calls = [];
      refs = [];
      events = [];
      tries = [];
    }
  in
  let add_prim_effects env name loc effects ~args =
    let line, col = loc_of loc in
    let ploc = { p_name = name; p_file = ctx.file; p_line = line; p_col = col } in
    List.iter
      (fun eff ->
        match eff with
        | P_nondet k ->
          if not (List.mem_assoc k facts.nondet_prims) then
            facts.nondet_prims <- (k, ploc) :: facts.nondet_prims
        | P_io -> facts.io_prims <- ploc :: facts.io_prims
        | P_raise -> facts.raises <- true
        | P_fsync -> facts.events <- E_fsync :: facts.events
        | P_rename -> facts.events <- E_rename (line, col) :: facts.events
        | P_global_mut -> facts.global_mut_prims <- ploc :: facts.global_mut_prims
        | P_mut (idx, atomic) -> (
          match args with
          | Some args -> (
            let nolabel_args =
              List.filter_map
                (function Asttypes.Nolabel, a -> Some a | _ -> None)
                args
            in
            match List.nth_opt nolabel_args idx with
            | Some target ->
              facts.mutations <-
                {
                  m_root = root_of graph env target;
                  m_atomic = atomic;
                  m_what = name;
                  m_line = line;
                  m_col = col;
                }
                :: facts.mutations
            | None -> ())
          | None -> ()))
      effects
  in
  let rec walk env e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ }
      when SSet.mem x env.locals || SSet.mem x env.outer ->
      ()
    | Pexp_ident { txt; _ } -> (
      match Callgraph.resolve graph ~ctx:env.ctx txt with
      | Callgraph.Def d ->
        let line, col = loc_of e.pexp_loc in
        facts.refs <- (d.id, line, col) :: facts.refs;
        facts.events <- E_call (d.id, line, col) :: facts.events
      | Callgraph.External name ->
        (* A primitive used as a value (e.g. passed to an iterator):
           its non-mutation effects still happen wherever it is
           applied; attribute them here, conservatively. *)
        add_prim_effects env name e.pexp_loc
          (List.filter (function P_mut _ -> false | _ -> true) (prims_of name))
          ~args:None)
    | Pexp_apply (f, args) -> (
      match longident_of f with
      | Some (Longident.Lident x) when SSet.mem x env.locals || SSet.mem x env.outer
        ->
        (* Calling a locally bound function value: unknown summary. *)
        List.iter (fun (_, a) -> walk env a) args
      | Some txt -> (
        (match Callgraph.resolve graph ~ctx:env.ctx txt with
        | Callgraph.Def d ->
          let line, col = loc_of e.pexp_loc in
          facts.calls <-
            {
              c_callee = d.id;
              c_args =
                List.map (fun (n, a) -> (n, root_of graph env a, a)) (map_args d args);
              c_line = line;
              c_col = col;
            }
            :: facts.calls;
          facts.events <- E_call (d.id, line, col) :: facts.events
        | Callgraph.External name ->
          add_prim_effects env name e.pexp_loc (prims_of name) ~args:(Some args));
        List.iter (fun (_, a) -> walk env a) args)
      | None ->
        walk env f;
        List.iter (fun (_, a) -> walk env a) args)
    | Pexp_setfield (tgt, _, v) ->
      let line, col = loc_of e.pexp_loc in
      facts.mutations <-
        {
          m_root = root_of graph env tgt;
          m_atomic = false;
          m_what = "<- (field assignment)";
          m_line = line;
          m_col = col;
        }
        :: facts.mutations;
      walk env tgt;
      walk env v
    | Pexp_let (rf, vbs, body) ->
      let env_rhs =
        match rf with
        | Asttypes.Recursive ->
          List.fold_left (fun acc vb -> bind acc vb.pvb_pat) env vbs
        | Asttypes.Nonrecursive -> env
      in
      List.iter (fun vb -> walk env_rhs vb.pvb_expr) vbs;
      let env' = List.fold_left (fun acc vb -> bind acc vb.pvb_pat) env vbs in
      walk env' body
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (walk env) default;
      walk (bind env pat) body
    | Pexp_function cases -> List.iter (walk_case env) cases
    | Pexp_match (scrut, cases) ->
      walk env scrut;
      List.iter (walk_case env) cases
    | Pexp_try (body, cases) ->
      let io_before = List.length facts.io_prims in
      let calls_before = List.length facts.calls in
      let refs_before = List.length facts.refs in
      walk env body;
      let new_io = List.length facts.io_prims > io_before in
      let take n l =
        let rec go i = function
          | x :: tl when i < n -> x :: go (i + 1) tl
          | _ -> []
        in
        go 0 l
      in
      let body_callees =
        List.map
          (fun c -> c.c_callee)
          (take (List.length facts.calls - calls_before) facts.calls)
        @ List.map
            (fun (id, _, _) -> id)
            (take (List.length facts.refs - refs_before) facts.refs)
      in
      let swallows =
        List.filter_map
          (fun c ->
            match swallow_pattern c with
            | Some desc when not (reraises c.pc_rhs) ->
              let line, col = loc_of c.pc_lhs.ppat_loc in
              Some (desc, line, col)
            | _ -> None)
          cases
      in
      facts.tries <-
        { t_io_direct = new_io; t_callees = body_callees; t_swallows = swallows }
        :: facts.tries;
      List.iter (walk_case env) cases
    | Pexp_for (pat, e1, e2, _, body) ->
      walk env e1;
      walk env e2;
      walk (bind env pat) body
    | Pexp_while (cond, body) ->
      walk env cond;
      walk env body
    | Pexp_letmodule
        ( { txt = Some name; _ },
          { pmod_desc = Pmod_ident { txt; _ }; _ },
          body ) ->
      walk
        { env with ctx = { env.ctx with aliases = (name, txt) :: env.ctx.aliases } }
        body
    | Pexp_open
        ({ popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }, body) ->
      walk
        {
          env with
          ctx = { env.ctx with opens = Callgraph.flatten txt :: env.ctx.opens };
        }
        body
    | Pexp_assert inner ->
      facts.raises <- true;
      walk env inner
    | _ ->
      (* Every remaining construct binds nothing: recurse into the
         immediate subexpressions with the same environment. *)
      let super = Ast_iterator.default_iterator in
      let it = { super with expr = (fun _ child -> walk env child) } in
      super.expr it e
  and walk_case env c =
    let env' = bind env c.pc_lhs in
    Option.iter (walk env') c.pc_guard;
    walk env' c.pc_rhs
  in
  let outer = List.fold_left (fun s v -> SSet.add v s) SSet.empty params in
  walk { ctx; locals = SSet.empty; outer } expr;
  facts.events <- List.rev facts.events;
  facts

(* --- Whole-program analysis -------------------------------------------- *)

type t = {
  facts : (string, facts) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

let default_sanitizers = [ "Mdr_util.Sorted_tbl." ]

let summary_of t id = Hashtbl.find_opt t.summaries id
let facts_of t id = Hashtbl.find_opt t.facts id

let analyze ?(sanitizers = default_sanitizers) (graph : Callgraph.t) =
  let ctx_of_file =
    let tbl = Hashtbl.create 64 in
    List.iter (fun ((c : Callgraph.file_ctx), _) -> Hashtbl.replace tbl c.file c) graph.Callgraph.ctxs;
    tbl
  in
  let facts_tbl = Hashtbl.create 512 in
  let summaries = Hashtbl.create 512 in
  let sanitized id = List.exists (fun p -> starts_with ~prefix:p id) sanitizers in
  (* Intraprocedural pass. *)
  List.iter
    (fun id ->
      match Callgraph.find_def graph id with
      | None -> ()
      | Some d ->
        let ctx = Hashtbl.find ctx_of_file d.Callgraph.file in
        let params = List.filter_map (fun (_, n) -> n) d.Callgraph.params in
        let f = scan_expr graph ~ctx ~params d.Callgraph.body in
        Hashtbl.replace facts_tbl id f;
        let s =
          {
            nondet = (if sanitized id then [] else List.map (fun (k, p) -> (k, Prim p)) f.nondet_prims);
            mutates_global =
              (match f.global_mut_prims with
              | p :: _ -> Some (Prim p)
              | [] -> (
                match
                  List.find_opt
                    (fun m ->
                      (not m.m_atomic)
                      && match m.m_root with Global _ -> true | _ -> false)
                    (List.rev f.mutations)
                with
                | Some m ->
                  Some
                    (Prim
                       {
                         p_name = m.m_what;
                         p_file = f.f_file;
                         p_line = m.m_line;
                         p_col = m.m_col;
                       })
                | None -> None));
            mutated_params =
              List.filter_map
                (fun m ->
                  match m.m_root with
                  | Outer p when not m.m_atomic ->
                    Some
                      ( p,
                        Prim
                          {
                            p_name = m.m_what;
                            p_file = f.f_file;
                            p_line = m.m_line;
                            p_col = m.m_col;
                          } )
                  | _ -> None)
                (List.rev f.mutations)
              |> List.sort_uniq compare;
            io =
              (match List.rev f.io_prims with p :: _ -> Some (Prim p) | [] -> None);
            may_raise = f.raises;
            calls_fsync = List.exists (function E_fsync -> true | _ -> false) f.events;
            calls_rename =
              List.exists (function E_rename _ -> true | _ -> false) f.events;
          }
        in
        (* Keep at most one origin per mutated param. *)
        let dedup =
          List.fold_left
            (fun acc (p, o) -> if List.mem_assoc p acc then acc else (p, o) :: acc)
            [] s.mutated_params
        in
        s.mutated_params <- List.rev dedup;
        Hashtbl.replace summaries id s)
    graph.Callgraph.def_order;
  (* Fixpoint propagation over the call graph. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        match (Hashtbl.find_opt facts_tbl id, Hashtbl.find_opt summaries id) with
        | Some f, Some s ->
          let merge_flags ~callee (cs : summary) =
            if not (sanitized id) then
              List.iter
                (fun (k, _) ->
                  if not (List.mem_assoc k s.nondet) then begin
                    s.nondet <- (k, Via callee) :: s.nondet;
                    changed := true
                  end)
                cs.nondet;
            if cs.io <> None && s.io = None then begin
              s.io <- Some (Via callee);
              changed := true
            end;
            if cs.may_raise && not s.may_raise then begin
              s.may_raise <- true;
              changed := true
            end;
            if cs.calls_fsync && not s.calls_fsync then begin
              s.calls_fsync <- true;
              changed := true
            end;
            if cs.calls_rename && not s.calls_rename then begin
              s.calls_rename <- true;
              changed := true
            end;
            if cs.mutates_global <> None && s.mutates_global = None then begin
              s.mutates_global <- Some (Via callee);
              changed := true
            end
          in
          List.iter
            (fun c ->
              match Hashtbl.find_opt summaries c.c_callee with
              | None -> ()
              | Some cs ->
                merge_flags ~callee:c.c_callee cs;
                List.iter
                  (fun (p, _) ->
                    let arg_root =
                      List.find_map
                        (fun (n, r, _) -> if n = p then Some r else None)
                        c.c_args
                    in
                    match arg_root with
                    | Some (Outer q) ->
                      if not (List.mem_assoc q s.mutated_params) then begin
                        s.mutated_params <-
                          s.mutated_params @ [ (q, Via c.c_callee) ];
                        changed := true
                      end
                    | Some (Global _) ->
                      if s.mutates_global = None then begin
                        s.mutates_global <- Some (Via c.c_callee);
                        changed := true
                      end
                    | Some (Local | Free _ | Anon) | None -> ())
                  cs.mutated_params)
            f.calls;
          List.iter
            (fun (rid, _, _) ->
              match Hashtbl.find_opt summaries rid with
              | None -> ()
              | Some cs ->
                (* Function passed as a value: its nondet/IO/raise
                   happen wherever it is applied; parameter mutations
                   cannot be mapped and are dropped (documented
                   unsoundness). *)
                merge_flags ~callee:rid
                  { cs with mutated_params = []; mutates_global = cs.mutates_global })
            f.refs
        | _ -> ())
      graph.Callgraph.def_order
  done;
  { facts = facts_tbl; summaries }

(* --- Witness chains ----------------------------------------------------- *)

let rec nondet_chain t id kind acc =
  if List.mem id acc then (List.rev acc, None)
  else
    match Hashtbl.find_opt t.summaries id with
    | None -> (List.rev acc, None)
    | Some s -> (
      match List.assoc_opt kind s.nondet with
      | Some (Prim p) -> (List.rev (id :: acc), Some p)
      | Some (Via callee) -> nondet_chain t callee kind (id :: acc)
      | None -> (List.rev (id :: acc), None))

let rec global_mut_chain_acc t id acc =
  if List.mem id acc then (List.rev acc, None)
  else
    match Hashtbl.find_opt t.summaries id with
    | None -> (List.rev acc, None)
    | Some s -> (
      match s.mutates_global with
      | Some (Prim p) -> (List.rev (id :: acc), Some p)
      | Some (Via callee) -> global_mut_chain_acc t callee (id :: acc)
      | None -> (List.rev (id :: acc), None))

let nondet_chain t id kind = nondet_chain t id kind []
let global_mut_chain t id = global_mut_chain_acc t id []
