(** Whole-program call-graph substrate for {!Check_rules}.

    Parses every scanned source file, assigns each top-level binding a
    canonical id ([Mdr_util.Pool.map_array] for a dune-library module,
    [Mdrsim.main] for an executable module), and resolves [Longident]s
    through file-local module aliases, same-library sibling modules,
    absolute library paths and top-level [open]s. Resolution is
    name-based, not type-based: functors and first-class modules are
    out of scope. *)

type def = {
  id : string;
  file : string;  (** root-relative *)
  line : int;
  col : int;
  params : (Asttypes.arg_label * string option) list;
      (** peeled fun-chain: label and variable name *)
  body : Parsetree.expression;  (** after peeling the fun chain *)
  full : Parsetree.expression;  (** the whole bound expression *)
}

type file_ctx = {
  file : string;
  modpath : string;
  lib_prefix : string option;
  aliases : (string * Longident.t) list;
  opens : string list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  def_order : string list;  (** deterministic iteration order *)
  ctxs : (file_ctx * Parsetree.structure) list;
  siblings : (string, unit) Hashtbl.t;
}

val build : ?dirs:string list -> root:string -> unit -> t
(** Parse and index everything under [root/dirs] (default
    {!Source_walk.default_dirs}).
    @raise Source_walk.Parse_failure if a file does not parse. *)

val find_def : t -> string -> def option

type resolved =
  | Def of def
  | External of string  (** flattened path after alias expansion *)

val resolve :
  ?extra_aliases:(string * Longident.t) list ->
  t -> ctx:file_ctx -> Longident.t -> resolved
(** Resolve an identifier as seen from [ctx]'s file, innermost scope
    first. [extra_aliases] carries function-local [let module]
    aliases discovered by the effects walker. *)

val flatten : Longident.t -> string
