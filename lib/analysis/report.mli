(** Shared findings report for the two static passes.

    Both {!Lint_rules} and {!Check_rules} produce this shape: findings
    with a rule id and a root-relative location, allowlist bookkeeping,
    and three renderings — human text, the JSON report, and SARIF
    2.1.0 for GitHub code scanning. *)

type finding = {
  rule : string;
  file : string;  (** relative to the scan root *)
  line : int;
  col : int;
  message : string;
}

type stale = {
  stale_rule : string;
  stale_file : string;
  stale_line : int option;
}
(** An allowlist entry that suppressed nothing in this scan. Stale
    entries are failures too — left in place they would silently
    excuse the next violation at that location. *)

type rule_info = { rule_id : string; about : string }

type t = {
  tool : string;
  files_scanned : int;
  findings : finding list;
  suppressed : int;
  stale_allow : stale list;
  rule_infos : rule_info list;
}

val clean : t -> bool
(** No findings and no stale allowlist entries. *)

type allow = { allow_file : string; allow_line : int option }

val parse_allow_line : string -> allow option
(** One [lint/<rule>.allow] line: [path] or [path:line], [#] comments
    and blanks yield [None]. *)

val load_allowlist : allow_dir:string -> string -> allow list
(** The entries of [allow_dir/<rule>.allow] (empty if absent). *)

val apply_allowlists :
  allow_dir:string -> rule_names:string list -> finding list ->
  finding list * int * stale list
(** [(kept, suppressed_count, stale_entries)]. *)

val render_finding : finding -> string
(** [file:line:col: [rule] message] — one line, greppable. *)

val render : t -> string
val to_json : t -> string

val to_sarif : t -> string
(** SARIF 2.1.0: one run, rules as reportingDescriptors, one result
    per finding; stale allowlist entries become results of a synthetic
    [stale-allowlist-entry] rule so they fail a code scan too. *)
