(** Shared source discovery, parsing and module naming for the two
    static passes ({!Lint_rules} and {!Check_rules}).

    Both passes must agree on what "the repo's sources" means — same
    directories, same discovery order, same path normalization, same
    parser — or the [lint/<rule>.allow] convention (root-relative
    paths) would mean different things to each. *)

exception Parse_failure of { file : string; message : string }

val default_dirs : string list
(** [["lib"; "bin"; "examples"; "test"]] — examples and test are
    scanned too: a nondeterministic example or racy test fixture
    undermines the same byte-identical claims the product rules
    guard. *)

val normalize : string -> string
(** Strip a leading ["./"] so scopes and allowlists match either
    spelling. *)

val find_root : string -> string option
(** Nearest ancestor directory containing [dune-project]. *)

val ml_files_under : string -> string list
(** Every [.ml] file under a directory, sorted, skipping [_build] and
    dot-directories. *)

val strip : root:string -> string -> string
(** Make an absolute path root-relative (identity if not under
    [root]). *)

val files : ?dirs:string list -> root:string -> unit -> (string * string) list
(** [(path, relative)] pairs for every [.ml] under [root/dirs]. *)

val parse_file : string -> Parsetree.structure
(** Parse one file with compiler-libs.
    @raise Parse_failure when the file does not parse. *)

val library_name_of_dune : string -> string option
(** The [(name ...)] of the first [(library ...)] stanza in a dune
    file, if any. *)

val canonical_module : root:string -> string -> string
(** The repo-wide module path of a source file: a file in a dune
    library is ["Mdr_util.Pool"]-shaped (wrapped), an executable
    module (bin, examples, test) stands alone as ["Mdrsim"]. *)
