(** Bounded exhaustive model checking of MPDA message interleavings.

    Explores {e every} ordering of in-flight control messages on a
    small topology — optionally with a single duplex link-cost change
    and a bounded number of message losses injected at any point — and
    checks the loop-freedom invariants after every transition. The
    search is breadth-first over deduplicated states, so it terminates
    on these scopes and the first violation found has a minimal-length
    reproduction trace. *)

module Graph = Mdr_topology.Graph
module Router = Mdr_routing.Router

type action =
  | Deliver of { src : int; dst : int }
      (** deliver the head of the [src -> dst] channel *)
  | Lose of { src : int; dst : int }
      (** destroy the head of the [src -> dst] channel *)
  | Change_cost of { src : int; dst : int; cost : float }
      (** apply the pending cost change at [src]'s end of the link *)

type scenario = {
  name : string;
  topo : Graph.t;
  cost : Graph.link -> float;  (** initial link costs *)
  change : (int * int * float) option;
      (** one duplex cost change [(a, b, cost)]; each direction is an
          independently schedulable action *)
  losses : int;  (** adversary's message-loss budget *)
  max_states : int;  (** state cap; exploration reports [complete = false]
                         when it bites *)
}

type invariant = {
  inv_name : string;
  holds : Router.t array -> dst:int -> bool;
}

val acyclic_invariant : invariant
val lfi_invariant : invariant

val standard_invariants : invariant list
(** Successor-graph acyclicity plus the LFI conditions — what MPDA
    guarantees in every state (paper Theorem 4). *)

val broken_feasibility_invariant : invariant
(** A deliberately too-strong feasibility condition (demands a unit
    margin between FD and every neighbor's report). MPDA does not
    satisfy it; used as the negative test that the checker actually
    finds and minimizes counterexamples. *)

type violation = {
  failed : string;  (** name of the violated invariant *)
  at_dst : int;
  trace : action list;
      (** minimal-length reproduction from the initial state *)
}

type stats = {
  scenario_name : string;
  states : int;  (** distinct states visited, including the initial one *)
  transitions : int;
  max_depth : int;
  complete : bool;  (** false iff the state cap was exhausted *)
  violation : violation option;
}

val explore : ?invariants:invariant list -> scenario -> stats
(** Breadth-first search from the state where every link has just come
    up (all initial full-table LSUs in flight). Defaults to
    {!standard_invariants}; stops at the first violation. *)

val explore_all :
  ?jobs:int -> ?invariants:invariant list -> scenario list -> stats list
(** {!explore} over a scenario list, fanned out on an
    {!Mdr_util.Pool} ([jobs] defaults to [MDR_JOBS]). Stats come back
    in scenario order and are identical at any job count. *)

val bundled : ?max_states:int -> unit -> scenario list
(** The shipped 3-5-node scenario corpus (triangles, lines, diamonds
    and rings, with and without a cost change / a message loss). *)

val describe_action : Graph.t -> action -> string

val render_trace : Graph.t -> violation -> string
(** Human-readable minimized counterexample. *)

val render_stats : stats -> string
(** One line per scenario for the [mdrsim verify] report. *)
