(** Custom per-file static analysis over the repo's own sources.

    Parses each [.ml] file with compiler-libs, walks the Parsetree, and
    enforces the repo-specific rules described in the implementation
    (float equality, deterministic hash-table iteration, catch-all
    handlers, [Obj.magic], stdout printing in libraries). No type
    information is used, so the float rule is syntactic and
    deliberately conservative.

    Cross-module rules (domain races, determinism taint, crash-safety)
    are {!Check_rules}; file discovery and parsing are shared with it
    through {!Source_walk}, and reports through {!Report}.

    Allowlists live at [<root>/lint/<rule>.allow]; each line is a
    [path] (whole file) or [path:line] entry relative to the root, [#]
    starts a comment. *)

type violation = Report.finding = {
  rule : string;
  file : string;  (** relative to the scan root *)
  line : int;
  col : int;
  message : string;
}

type rule = {
  name : string;
  what : string;
  scope : string list;  (** directory prefixes; [] = everywhere scanned *)
}

val rules : rule list

val scan_file : ?path:string -> file:string -> unit -> violation list
(** Lint a single file. [path] is where the source is read (defaults
    to [file]); [file] is the root-relative name used for rule scoping
    and in reports. No allowlisting is applied. Raises
    {!Source_walk.Parse_failure} if the file does not parse. *)

type stale = Report.stale = {
  stale_rule : string;
  stale_file : string;  (** as written in the .allow file, normalized *)
  stale_line : int option;
}
(** An allowlist entry that suppressed nothing in this scan: the code
    it excused was fixed, moved or renamed. Stale entries are failures
    too — left in place they would silently excuse the next violation
    at that location. *)

type report = {
  files_scanned : int;
  violations : violation list;
  suppressed : int;  (** allowlisted hits *)
  stale_allow : stale list;  (** entries that matched nothing *)
}

val run : ?dirs:string list -> ?allow_dir:string -> root:string -> unit -> report
(** Scan every [.ml] file under [root/dirs] (default
    {!Source_walk.default_dirs}: lib, bin, examples, test), apply
    allowlists from [root/allow_dir] (default [lint]), and report
    violations with paths relative to [root]. *)

val to_report : report -> Report.t
(** The shared-report view ([tool = "lint"]), for SARIF emission and
    uniform rendering. *)

val render_violation : violation -> string
(** [file:line:col: [rule] message] — one line, greppable. *)

val render : report -> string
val to_json : report -> string
val to_sarif : report -> string
