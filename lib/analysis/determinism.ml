(* Determinism sanitizer.

   Every experiment in this repo is supposed to be a pure function of
   its seed — the chaos campaign replays from --seed, the packet
   simulator from config.seed, and the fluid solver takes no
   randomness at all. That property is what makes figures
   reproducible and the fault-injection audits trustworthy, and it is
   exactly what an accidental [Hashtbl.iter] (bucket order depends on
   hash state) or a stray wall-clock read silently destroys.

   Each check below builds a full-precision textual trace of one
   pipeline (floats serialized with [%h] so every bit counts), runs it
   twice in the same process, and compares MD5 digests. A divergence
   means some state outside the seed leaked into the computation. *)

module Rng = Mdr_util.Rng
module Campaign = Mdr_faults.Campaign
module Workload = Mdr_experiments.Workload
module Sim = Mdr_netsim.Sim
module Gallager = Mdr_gallager.Gallager
module Evaluate = Mdr_fluid.Evaluate
module Flows = Mdr_fluid.Flows

type outcome = {
  check_name : string;
  hash1 : string;  (* hex MD5 of the first run's trace *)
  hash2 : string;
  deterministic : bool;
}

let hex = Digest.to_hex

let pf = Printf.bprintf

(* --- Chaos campaign ---------------------------------------------------- *)

let chaos_trace ~seed () =
  let b = Buffer.create 4096 in
  let profile = { Campaign.default_profile with Campaign.duration = 10.0 } in
  let master = Rng.create ~seed in
  let scenario i topo =
    let rng = Rng.split master in
    let plan = Campaign.random_plan ~rng ~topo profile in
    pf b "scenario %d: %d faults\n" i (List.length plan.Campaign.faults);
    List.iter
      (fun (m : Campaign.metrics) ->
        pf b "  %s events=%d loops=%d lfi=%d msgs=%d rexmit=%d acks=%d reconv=%h conv=%b\n"
          m.Campaign.protocol m.Campaign.events m.Campaign.loop_violations
          m.Campaign.lfi_violations m.Campaign.messages m.Campaign.retransmissions
          m.Campaign.transport_acks m.Campaign.reconvergence m.Campaign.converged)
      [
        Campaign.run_mpda ~topo ~seed:(seed + i) plan;
        Campaign.run_dv ~topo ~seed:(seed + i) plan;
      ]
  in
  scenario 0 (Mdr_topology.Cairn.topology ());
  scenario 1
    (Mdr_topology.Generators.ring_with_chords ~rng:(Rng.split master) ~n:8
       ~chords:3 ~capacity:1.0e7 ~prop_delay:0.002);
  Buffer.contents b

(* --- Fluid OPT / SP evaluation ----------------------------------------- *)

let fluid_trace ~load () =
  let b = Buffer.create 4096 in
  let w = Workload.cairn ~load in
  let model = Workload.model w in
  let traffic = Workload.traffic w in
  (* Static SPF reference *)
  let spf = Gallager.spf_params model w.Workload.topo in
  let spf_flows = Flows.compute spf traffic in
  pf b "SP D_T=%h avg=%h\n"
    (Evaluate.total_cost model spf_flows)
    (Evaluate.average_delay model spf_flows traffic);
  (* OPT: Gallager's iteration to (near) optimum *)
  let opt = Gallager.solve ~max_iters:400 model w.Workload.topo traffic in
  pf b "OPT D_T=%h avg=%h iters=%d conv=%b\n" opt.Gallager.total_cost
    opt.Gallager.avg_delay opt.Gallager.iterations opt.Gallager.converged;
  List.iter (fun d -> pf b "  hist %h\n" d) opt.Gallager.history;
  List.iter
    (fun ((_ : Mdr_fluid.Traffic.flow), d) -> pf b "  flow %h\n" d)
    (Evaluate.per_flow_delays model opt.Gallager.params opt.Gallager.flows traffic);
  Buffer.contents b

(* --- Packet simulator, MP and SP --------------------------------------- *)

let netsim_trace ~seed () =
  let b = Buffer.create 4096 in
  let w = Workload.cairn ~load:0.6 in
  let flows = Workload.sim_flows w in
  List.iter
    (fun (scheme, tag) ->
      let config =
        {
          Sim.default_config with
          Sim.scheme;
          sim_time = 20.0;
          warmup = 5.0;
          seed;
        }
      in
      let r = Sim.run ~config w.Workload.topo flows in
      pf b "%s avg=%h delivered=%d dropped=%d ctl=%d loops=%d maxq=%h\n" tag
        r.Sim.avg_delay r.Sim.total_delivered r.Sim.total_dropped
        r.Sim.control_messages r.Sim.loop_free_violations r.Sim.max_mean_queue;
      List.iter
        (fun (f : Sim.flow_stat) ->
          pf b "  flow %d->%d delivered=%d dropped=%d mean=%h p95=%h hops=%h\n"
            f.Sim.spec.Sim.src f.Sim.spec.Sim.dst f.Sim.delivered f.Sim.dropped
            f.Sim.mean_delay f.Sim.p95_delay f.Sim.mean_hops)
        r.Sim.flows)
    [ (Sim.Mp, "MP"); (Sim.Sp, "SP") ];
  Buffer.contents b

(* --- Parallel equivalence ---------------------------------------------- *)

(* A fourth leak the double-run above cannot see: domain scheduling.
   [Campaign.run_campaign] promises byte-identical results at any job
   count; here hash1 is the sequential campaign digest and hash2 the
   same campaign fanned out over [jobs] domains. Divergence means some
   task read state owned by another — exactly what the pool's
   index-pure contract forbids. *)

let campaign_digest ~seed ~jobs =
  let profile = { Campaign.default_profile with Campaign.duration = 8.0 } in
  let topo_of i rng =
    if i mod 2 = 0 then Mdr_topology.Cairn.topology ()
    else
      Mdr_topology.Generators.ring_with_chords ~rng ~n:8 ~chords:3
        ~capacity:1.0e7 ~prop_delay:0.002
  in
  Campaign.digest (Campaign.run_campaign ~jobs ~profile ~topo_of ~seed ~scenarios:4 ())

let parallel_equivalence ?(seed = 7) ?(jobs = 2) () =
  let h1 = campaign_digest ~seed ~jobs:1 in
  let h2 = campaign_digest ~seed ~jobs in
  {
    check_name = "chaos-seq-vs-par";
    hash1 = h1;
    hash2 = h2;
    deterministic = String.equal h1 h2;
  }

(* --- Driver ------------------------------------------------------------ *)

let checks ?(seed = 7) () =
  [
    ("chaos-campaign", chaos_trace ~seed);
    ("fluid-sp-opt", fluid_trace ~load:0.9);
    ("netsim-mp-sp", netsim_trace ~seed);
  ]

let run_check (check_name, trace) =
  let h1 = hex (Digest.string (trace ())) in
  let h2 = hex (Digest.string (trace ())) in
  { check_name; hash1 = h1; hash2 = h2; deterministic = String.equal h1 h2 }

let run_all ?seed () =
  List.map run_check (checks ?seed ()) @ [ parallel_equivalence ?seed () ]

let all_deterministic outcomes = List.for_all (fun o -> o.deterministic) outcomes

let render o =
  if o.deterministic then Printf.sprintf "%-16s ok    %s" o.check_name o.hash1
  else
    Printf.sprintf "%-16s DIVERGED\n  run 1: %s\n  run 2: %s" o.check_name
      o.hash1 o.hash2
