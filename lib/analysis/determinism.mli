(** Determinism sanitizer: every experiment must be a pure function of
    its seed.

    Each check runs one pipeline twice in the same process, serializes
    the complete observable trace at full float precision ([%h]), and
    compares MD5 digests. A divergence means state outside the seed
    (hash-table bucket order, wall clock, ...) leaked into the
    computation. *)

type outcome = {
  check_name : string;
  hash1 : string;  (** hex MD5 of the first run's trace *)
  hash2 : string;
  deterministic : bool;
}

val chaos_trace : seed:int -> unit -> string
(** Two chaos-campaign scenarios (CAIRN and a generated ring) run
    against MPDA and DV: plans, audit counts, reconvergence times. *)

val fluid_trace : load:float -> unit -> string
(** SP reference and Gallager OPT on the CAIRN workload: D_T, average
    delay, iteration history, per-flow delays. *)

val netsim_trace : seed:int -> unit -> string
(** Packet simulator under MP and SP on CAIRN: aggregate and per-flow
    statistics. *)

val checks : ?seed:int -> unit -> (string * (unit -> string)) list
(** The bundled check list: chaos campaign, fluid SP/OPT evaluation,
    packet simulator MP/SP. *)

val parallel_equivalence : ?seed:int -> ?jobs:int -> unit -> outcome
(** Scheduling-independence check: [hash1] is the digest of a small
    chaos campaign run sequentially, [hash2] the identical campaign
    fanned out over [jobs] (default 2) pool domains. [deterministic]
    means parallel execution reproduced the sequential results
    byte-for-byte. *)

val run_check : string * (unit -> string) -> outcome

(** All double-run checks plus {!parallel_equivalence}. *)
val run_all : ?seed:int -> unit -> outcome list
val all_deterministic : outcome list -> bool
val render : outcome -> string
