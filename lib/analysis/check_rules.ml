(* Cross-module rules on top of [Callgraph] + [Effects].

   Three rule families, one finding stream, same allowlist convention
   as [Lint_rules] ([lint/<rule>.allow]):

   - [domain-race]: a closure handed to an [Mdr_util.Pool] fan-out
     runs on another domain. It must not mutate anything it captured
     (enclosing locals, module-level state) except through [Atomic],
     must not hand captured values to callees that mutate their
     parameters, and must not depend on process-global
     nondeterminism ([Random], wall clocks) — per-index [Rng]
     substreams exist for exactly that. Literal lambdas are analyzed
     in place; a task that is a top-level function is checked via its
     summary; a task that is a local binding or partial application
     is skipped (documented limitation, pinned by fixtures).

   - [determinism-taint]: no nondeterminism source may flow, through
     any call chain, into the fingerprint/digest/encode functions
     that define byte-stable outputs. The finding points at the
     primitive use (so the allowlist entry sits next to the code that
     earns it) and the message carries the witness chain.

   - [crash-safety]: in [lib/server], write paths must not swallow
     [Sys_error]/[Unix_error] (or everything) around I/O without
     re-raising, and every [rename] publish must be preceded by an
     [fsync] in traversal order — directly or through a callee whose
     summary fsyncs. *)

open Parsetree

type config = {
  pool_fns : (string * string) list;
      (* fan-out entry point id -> name of its task parameter *)
  sinks : string list;  (* determinism sink def ids *)
  crash_scope : string list;  (* file prefixes for crash-safety *)
}

let default_config =
  {
    pool_fns =
      [
        ("Mdr_util.Pool.map_array", "f");
        ("Mdr_util.Pool.mapi_array", "f");
        ("Mdr_util.Pool.init", "f");
        ("Mdr_util.Pool.map_list", "f");
      ];
    sinks =
      [
        (* The incremental SPF engine's outputs are protocol state that
           feeds Router.fingerprint bit-for-bit; its repair order must
           not depend on any nondeterminism source. *)
        "Mdr_routing.Incr_spf.update";
        "Mdr_routing.Incr_spf.full";
        "Mdr_routing.Router.fingerprint";
        "Mdr_faults.Campaign.fingerprint";
        "Mdr_faults.Campaign.digest";
        "Mdr_server.Server.fingerprint";
        "Mdr_server.Server.snapshot_payload";
        "Mdr_server.Update.encode";
        "Mdr_server.Journal.append";
        "Mdr_server.Snapshot.write";
        "Mdr_server.Codec.frame";
        "Mdr_server.Codec.header";
      ];
    crash_scope = [ "lib/server/"; "lib/wire/" ];
  }

let rules =
  [
    ( "domain-race",
      "Pool task closures must not share mutable captured state across domains" );
    ( "determinism-taint",
      "no nondeterminism source may reach a fingerprint/digest/encode sink" );
    ( "crash-safety",
      "server write paths: no swallowed I/O errors, fsync before rename" );
  ]

let finding rule file line col message =
  { Report.rule; file; line; col; message }

(* --- Shared helpers ----------------------------------------------------- *)

let rec pvars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pvars (txt :: acc) p
  | Ppat_tuple ps -> List.fold_left pvars acc ps
  | Ppat_constraint (p, _) -> pvars acc p
  | _ -> acc

let rec peel_fun vars e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> peel_fun (pvars vars pat) body
  | Pexp_newtype (_, body) -> peel_fun vars body
  | Pexp_constraint (e, _) -> peel_fun vars e
  | _ -> (List.rev vars, e)

let rec is_fun e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) -> is_fun e
  | _ -> false

let chain_str chain prim =
  String.concat " -> " chain
  ^
  match prim with
  | Some (p : Effects.prim_loc) ->
    Printf.sprintf "; %s at %s:%d" p.p_name p.p_file p.p_line
  | None -> ""

let has_prefix prefixes file =
  let file = Source_walk.normalize file in
  List.exists
    (fun p ->
      String.length file >= String.length p
      && String.sub file 0 (String.length p) = p)
    prefixes

(* --- Rule 1: domain-race ------------------------------------------------ *)

let race_nondet_kinds = [ Effects.Random_state; Effects.Wall_clock ]

let check_task_summary eff ~out ~file ~line ~col id =
  (match Effects.summary_of eff id with
  | None -> ()
  | Some s ->
    (match s.Effects.mutates_global with
    | Some _ ->
      let chain, prim = Effects.global_mut_chain eff id in
      out :=
        finding "domain-race" file line col
          (Printf.sprintf
             "Pool task calls %s, which mutates module-level state (%s); \
              cross-domain state must go through Atomic or per-index workspaces"
             id (chain_str chain prim))
        :: !out
    | None -> ());
    List.iter
      (fun k ->
        match List.assoc_opt k s.Effects.nondet with
        | Some _ ->
          let chain, prim = Effects.nondet_chain eff id k in
          out :=
            finding "domain-race" file line col
              (Printf.sprintf
                 "Pool task calls %s, which depends on %s (%s); parallel runs \
                  lose seed-determinism — use the per-index Rng substream"
                 id (Effects.kind_name k) (chain_str chain prim))
            :: !out
        | None -> ())
      race_nondet_kinds)

let check_closure graph eff ~ctx ~out expr =
  let params, body = peel_fun [] expr in
  let cf = Effects.scan_expr graph ~ctx ~params body in
  let file = cf.Effects.f_file in
  (* Mutations of captured or module-level roots. *)
  List.iter
    (fun (m : Effects.mutation) ->
      if not m.m_atomic then
        match m.m_root with
        | Effects.Free n ->
          out :=
            finding "domain-race" file m.m_line m.m_col
              (Printf.sprintf
                 "Pool task mutates captured %s (%s); cross-domain state must \
                  go through Atomic or per-index workspaces"
                 n m.m_what)
            :: !out
        | Effects.Global g ->
          out :=
            finding "domain-race" file m.m_line m.m_col
              (Printf.sprintf
                 "Pool task mutates module-level state %s (%s); cross-domain \
                  state must go through Atomic or per-index workspaces"
                 g m.m_what)
            :: !out
        | Effects.Local | Effects.Outer _ | Effects.Anon -> ())
    (List.rev cf.Effects.mutations);
  (* Nondeterminism used directly in the task body. *)
  List.iter
    (fun (k, (p : Effects.prim_loc)) ->
      if List.mem k race_nondet_kinds then
        out :=
          finding "domain-race" file p.p_line p.p_col
            (Printf.sprintf
               "Pool task uses %s (%s); parallel runs lose seed-determinism — \
                use the per-index Rng substream"
               p.p_name (Effects.kind_name k))
          :: !out)
    (List.rev cf.Effects.nondet_prims);
  (* Callees: inherited global mutation / nondeterminism, and captured
     values handed to parameters the callee mutates. *)
  List.iter
    (fun (c : Effects.callsite) ->
      check_task_summary eff ~out ~file ~line:c.c_line ~col:c.c_col c.c_callee;
      match Effects.summary_of eff c.c_callee with
      | None -> ()
      | Some s ->
        List.iter
          (fun (pname, _) ->
            List.iter
              (fun (n, r, _) ->
                if n = pname then
                  match r with
                  | Effects.Free a ->
                    out :=
                      finding "domain-race" file c.c_line c.c_col
                        (Printf.sprintf
                           "Pool task passes captured %s to parameter %s of \
                            %s, which mutates it; copy it per index or use \
                            Atomic"
                           a pname c.c_callee)
                      :: !out
                  | Effects.Global g ->
                    out :=
                      finding "domain-race" file c.c_line c.c_col
                        (Printf.sprintf
                           "Pool task passes module-level %s to parameter %s \
                            of %s, which mutates it"
                           g pname c.c_callee)
                      :: !out
                  | _ -> ())
              c.c_args)
          s.Effects.mutated_params)
    (List.rev cf.Effects.calls);
  (* Top-level functions used as values inside the task. *)
  List.iter
    (fun (id, line, col) -> check_task_summary eff ~out ~file ~line ~col id)
    (List.rev cf.Effects.refs)

let domain_race graph eff ~ctx_of_file ~pool_fns =
  let out = ref [] in
  List.iter
    (fun id ->
      match (Callgraph.find_def graph id, Effects.facts_of eff id) with
      | Some def, Some f ->
        let ctx : Callgraph.file_ctx = Hashtbl.find ctx_of_file def.Callgraph.file in
        List.iter
          (fun (c : Effects.callsite) ->
            match List.assoc_opt c.c_callee pool_fns with
            | None -> ()
            | Some task_param -> (
              match
                List.find_opt (fun (n, _, _) -> n = task_param) c.c_args
              with
              | None -> ()
              | Some (_, root, expr) ->
                if is_fun expr then check_closure graph eff ~ctx ~out expr
                else (
                  match root with
                  | Effects.Global id ->
                    check_task_summary eff ~out ~file:def.Callgraph.file
                      ~line:c.c_line ~col:c.c_col id
                  | _ ->
                    (* Local bindings and partial applications are not
                       traced to a summary: documented limitation. *)
                    ())))
          f.Effects.calls
      | _ -> ())
    graph.Callgraph.def_order;
  List.rev !out

(* --- Rule 2: determinism-taint ------------------------------------------ *)

let determinism_taint graph eff ~sinks =
  let out = ref [] in
  List.iter
    (fun sink ->
      match (Callgraph.find_def graph sink, Effects.summary_of eff sink) with
      | Some def, Some s ->
        List.iter
          (fun (k, _) ->
            let chain, prim = Effects.nondet_chain eff sink k in
            match prim with
            | Some p ->
              out :=
                finding "determinism-taint" p.p_file p.p_line p.p_col
                  (Printf.sprintf
                     "%s (%s) flows into determinism sink %s (path: %s)"
                     p.p_name (Effects.kind_name k) sink
                     (String.concat " -> " chain))
                :: !out
            | None ->
              out :=
                finding "determinism-taint" def.Callgraph.file def.Callgraph.line
                  def.Callgraph.col
                  (Printf.sprintf
                     "determinism sink %s is tainted by %s (partial path: %s)"
                     sink (Effects.kind_name k) (String.concat " -> " chain))
                :: !out)
          s.Effects.nondet
      | _ -> ())
    sinks;
  List.rev !out

(* --- Rule 3: crash-safety ----------------------------------------------- *)

let crash_safety graph eff ~crash_scope =
  let out = ref [] in
  List.iter
    (fun id ->
      match (Callgraph.find_def graph id, Effects.facts_of eff id) with
      | Some def, Some f when has_prefix crash_scope def.Callgraph.file ->
        let file = def.Callgraph.file in
        (* 3a: swallowed I/O errors around write paths. *)
        List.iter
          (fun (t : Effects.try_site) ->
            let body_does_io =
              t.t_io_direct
              || List.exists
                   (fun callee ->
                     match Effects.summary_of eff callee with
                     | Some s -> s.Effects.io <> None
                     | None -> false)
                   t.t_callees
            in
            if body_does_io then
              List.iter
                (fun (desc, line, col) ->
                  out :=
                    finding "crash-safety" file line col
                      (Printf.sprintf
                         "%s handler swallows I/O errors on a write path; let \
                          Sys_error/Unix_error propagate or escalate"
                         desc)
                    :: !out)
                t.t_swallows)
          (List.rev f.Effects.tries);
        (* 3b: fsync-before-rename ordering. *)
        let seen_fsync = ref false in
        List.iter
          (fun ev ->
            match ev with
            | Effects.E_fsync -> seen_fsync := true
            | Effects.E_rename (line, col) ->
              if not !seen_fsync then
                out :=
                  finding "crash-safety" file line col
                    "rename without a preceding fsync; a crash can publish \
                     unsynced data"
                  :: !out
            | Effects.E_call (callee, line, col) -> (
              match Effects.summary_of eff callee with
              | None -> ()
              | Some s ->
                if s.Effects.calls_fsync then seen_fsync := true
                else if s.Effects.calls_rename && not !seen_fsync then
                  out :=
                    finding "crash-safety" file line col
                      (Printf.sprintf
                         "calls %s, which renames without a preceding fsync"
                         callee)
                    :: !out))
          f.Effects.events
      | _ -> ())
    graph.Callgraph.def_order;
  List.rev !out

(* --- Driver ------------------------------------------------------------- *)

let run ?dirs ?(allow_dir = "lint") ?(config = default_config) ~root () =
  let graph = Callgraph.build ?dirs ~root () in
  let eff = Effects.analyze graph in
  let ctx_of_file = Hashtbl.create 64 in
  List.iter
    (fun ((c : Callgraph.file_ctx), _) -> Hashtbl.replace ctx_of_file c.file c)
    graph.Callgraph.ctxs;
  let all =
    domain_race graph eff ~ctx_of_file ~pool_fns:config.pool_fns
    @ determinism_taint graph eff ~sinks:config.sinks
    @ crash_safety graph eff ~crash_scope:config.crash_scope
  in
  let cmp (a : Report.finding) (b : Report.finding) =
    compare
      (a.file, a.line, a.col, a.rule, a.message)
      (b.file, b.line, b.col, b.rule, b.message)
  in
  let all = List.sort_uniq cmp all in
  let findings, suppressed, stale_allow =
    Report.apply_allowlists
      ~allow_dir:(Filename.concat root allow_dir)
      ~rule_names:(List.map fst rules)
      all
  in
  {
    Report.tool = "check";
    files_scanned = List.length graph.Callgraph.ctxs;
    findings;
    suppressed;
    stale_allow;
    rule_infos =
      List.map (fun (rule_id, about) -> { Report.rule_id; about }) rules;
  }
