(* Bounded exhaustive model checking of MPDA message interleavings.

   The chaos campaign audits the LFI conditions on the interleavings
   the event engine happens to produce; loop-freedom bugs in multipath
   routing protocols hide precisely in the orderings a simulator never
   draws (cf. the mDT / LFI literature). This checker closes that gap
   on small scopes: it takes a 3-5 node topology, brings every link up,
   and then explores *every* ordering of the in-flight control
   messages — optionally with one link-cost change and a bounded
   number of message losses injected at any point — asserting after
   every transition that, for every destination,

   - the successor graph is acyclic ([Lfi.successor_graph_acyclic]),
   - the LFI conditions hold ([Lfi.lfi_conditions_hold]).

   Model: each directed link carries a FIFO queue of router-level
   messages (the reliable transport delivers in order per link, so
   cross-link interleaving is exactly the nondeterminism the real
   system exhibits). A state is the array of router states plus the
   queues plus the not-yet-fired fault budget; transitions are
   "deliver the head of some queue", "lose the head of some queue"
   (budget permitting), or "apply the pending cost change at one
   endpoint".

   Exploration is breadth-first with replay: the frontier stores only
   action traces, and states are reconstructed by replaying the trace
   from the initial state. Visited states are deduplicated by a digest
   of the canonical state serialization ([Router.fingerprint] plus
   queue contents), so the search is exhaustive over distinct states,
   not distinct traces. Because the search is breadth-first, the first
   violation found is reached by a minimal-length action trace — the
   printed counterexample cannot be shortened without losing the
   violation. *)

module Graph = Mdr_topology.Graph
module Router = Mdr_routing.Router
module Topo_table = Mdr_routing.Topo_table
module Lfi = Mdr_routing.Lfi

type action =
  | Deliver of { src : int; dst : int }
  | Lose of { src : int; dst : int }
  | Change_cost of { src : int; dst : int; cost : float }

type scenario = {
  name : string;
  topo : Graph.t;
  cost : Graph.link -> float;
  change : (int * int * float) option;
      (* one duplex link-cost change; each direction becomes an
         independently schedulable action *)
  losses : int;  (* how many messages the adversary may destroy *)
  max_states : int;
}

type invariant = {
  inv_name : string;
  holds : Router.t array -> dst:int -> bool;
}

type violation = {
  failed : string;  (* invariant name *)
  at_dst : int;
  trace : action list;  (* minimal-length reproduction from the initial state *)
}

type stats = {
  scenario_name : string;
  states : int;  (* distinct states visited (including the initial one) *)
  transitions : int;
  max_depth : int;
  complete : bool;  (* false iff the state budget was exhausted *)
  violation : violation option;
}

(* --- Invariants -------------------------------------------------------- *)

let acyclic_invariant =
  {
    inv_name = "successor-graph-acyclic";
    holds =
      (fun routers ~dst ->
        let n = Array.length routers in
        Lfi.successor_graph_acyclic ~n
          ~successors:(fun ~node -> Router.successors routers.(node) ~dst)
          ~dst);
  }

let lfi_invariant =
  {
    inv_name = "lfi-conditions";
    holds =
      (fun routers ~dst ->
        let n = Array.length routers in
        Lfi.lfi_conditions_hold ~n
          ~neighbors:(fun node -> Router.up_neighbors routers.(node))
          ~feasible:(fun ~node ~dst -> Router.feasible_distance routers.(node) ~dst)
          ~reported:(fun ~holder ~about ~dst ->
            Router.neighbor_distance routers.(holder) ~nbr:about ~dst)
          ~dst);
  }

let standard_invariants = [ acyclic_invariant; lfi_invariant ]

(* A deliberately broken feasibility condition for negative testing: it
   demands FD_j stay a full unit below every neighbor's report, which
   MPDA neither promises nor delivers — the checker must find a
   violating interleaving and minimize it. *)
let broken_feasibility_invariant =
  {
    inv_name = "broken-feasibility-margin";
    holds =
      (fun routers ~dst ->
        let n = Array.length routers in
        Lfi.lfi_conditions_hold ~n
          ~neighbors:(fun node -> Router.up_neighbors routers.(node))
          ~feasible:(fun ~node ~dst ->
            Router.feasible_distance routers.(node) ~dst +. 1.0)
          ~reported:(fun ~holder ~about ~dst ->
            Router.neighbor_distance routers.(holder) ~nbr:about ~dst)
          ~dst);
  }

(* --- Model state ------------------------------------------------------- *)

type state = {
  routers : Router.t array;
  queues : Router.msg Queue.t array array;  (* queues.(src).(dst) *)
  mutable changes_left : (int * int * float) list;
  mutable losses_left : int;
}

let copy_state st =
  {
    routers = Array.map Router.copy st.routers;
    queues = Array.map (Array.map Queue.copy) st.queues;
    changes_left = st.changes_left;
    losses_left = st.losses_left;
  }

let enqueue_outputs st ~from_ outputs =
  List.iter
    (fun (o : Router.output) -> Queue.add o.Router.msg st.queues.(from_).(o.Router.dst))
    outputs

let initial_state scenario =
  let n = Graph.node_count scenario.topo in
  let st =
    {
      routers = Array.init n (fun id -> Router.create ~mode:Router.Mpda ~id ~n ());
      queues = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      changes_left =
        (match scenario.change with
        | None -> []
        | Some (a, b, c) -> [ (a, b, c); (b, a, c) ]);
      losses_left = scenario.losses;
    }
  in
  (* Bring every directed link up before any message is delivered,
     exactly as the harness schedules link-ups at t = 0 with positive
     propagation delays. Insertion order of [Graph.links] is fixed, so
     the initial state is deterministic. *)
  List.iter
    (fun (l : Graph.link) ->
      let outputs =
        Router.handle_link_up st.routers.(l.src) ~nbr:l.dst ~cost:(scenario.cost l)
      in
      enqueue_outputs st ~from_:l.src outputs)
    (Graph.links scenario.topo);
  st

let enabled_actions st =
  let n = Array.length st.routers in
  let acts = ref [] in
  List.iter
    (fun (src, dst, cost) -> acts := Change_cost { src; dst; cost } :: !acts)
    st.changes_left;
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if not (Queue.is_empty st.queues.(src).(dst)) then begin
        if st.losses_left > 0 then acts := Lose { src; dst } :: !acts;
        acts := Deliver { src; dst } :: !acts
      end
    done
  done;
  !acts

let apply st action =
  match action with
  | Deliver { src; dst } ->
    let msg = Queue.pop st.queues.(src).(dst) in
    enqueue_outputs st ~from_:dst (Router.handle_msg st.routers.(dst) ~from_:src msg)
  | Lose { src; dst } ->
    ignore (Queue.pop st.queues.(src).(dst));
    st.losses_left <- st.losses_left - 1
  | Change_cost { src; dst; cost } ->
    st.changes_left <-
      List.filter (fun (a, b, _) -> not (a = src && b = dst)) st.changes_left;
    enqueue_outputs st ~from_:src (Router.handle_link_cost st.routers.(src) ~nbr:dst ~cost)

(* --- Canonical digest -------------------------------------------------- *)

let msg_fp (b : Buffer.t) (m : Router.msg) =
  Buffer.add_string b (if m.Router.reset then "R" else "d");
  (match m.Router.seq with
  | Some s -> Buffer.add_string b (Printf.sprintf "s%d" s)
  | None -> ());
  (match m.Router.ack_of with
  | Some s -> Buffer.add_string b (Printf.sprintf "a%d" s)
  | None -> ());
  List.iter
    (fun (e : Topo_table.entry) ->
      Buffer.add_string b (Printf.sprintf "%d>%d:%h," e.head e.tail e.cost))
    m.Router.entries;
  Buffer.add_char b '.'

let digest st =
  let b = Buffer.create 1024 in
  Array.iter (fun r -> Buffer.add_string b (Router.fingerprint r)) st.routers;
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst q ->
          if not (Queue.is_empty q) then begin
            Buffer.add_string b (Printf.sprintf "|q%d>%d:" src dst);
            Queue.iter (msg_fp b) q
          end)
        row)
    st.queues;
  List.iter
    (fun (a, bb, c) -> Buffer.add_string b (Printf.sprintf "|c%d>%d:%h" a bb c))
    st.changes_left;
  Buffer.add_string b (Printf.sprintf "|l%d" st.losses_left);
  Digest.string (Buffer.contents b)

(* --- Search ------------------------------------------------------------ *)

let check_invariants invariants st =
  let n = Array.length st.routers in
  let bad = ref None in
  for dst = 0 to n - 1 do
    if !bad = None then
      List.iter
        (fun inv ->
          if !bad = None && not (inv.holds st.routers ~dst) then
            bad := Some (inv.inv_name, dst))
        invariants
  done;
  !bad

let explore ?(invariants = standard_invariants) scenario =
  let init = initial_state scenario in
  match check_invariants invariants init with
  | Some (failed, at_dst) ->
    {
      scenario_name = scenario.name;
      states = 1;
      transitions = 0;
      max_depth = 0;
      complete = true;
      violation = Some { failed; at_dst; trace = [] };
    }
  | None ->
    let visited = Hashtbl.create 4096 in
    Hashtbl.replace visited (digest init) ();
    (* Frontier entries are reversed action traces; states are rebuilt
       by replay so memory stays proportional to the frontier's trace
       length, not to the number of live router states. *)
    let frontier = Queue.create () in
    Queue.add [] frontier;
    let states = ref 1 and transitions = ref 0 and max_depth = ref 0 in
    let violation = ref None in
    let complete = ref true in
    let replay rev_trace =
      let st = copy_state init in
      List.iter (apply st) (List.rev rev_trace);
      st
    in
    while (not (Queue.is_empty frontier)) && !violation = None && !states < scenario.max_states
    do
      let rev_trace = Queue.pop frontier in
      let st = replay rev_trace in
      let depth = List.length rev_trace in
      List.iter
        (fun action ->
          if !violation = None && !states < scenario.max_states then begin
            let st' = copy_state st in
            apply st' action;
            incr transitions;
            match check_invariants invariants st' with
            | Some (failed, at_dst) ->
              violation :=
                Some { failed; at_dst; trace = List.rev (action :: rev_trace) }
            | None ->
              let d = digest st' in
              if not (Hashtbl.mem visited d) then begin
                Hashtbl.replace visited d ();
                incr states;
                if depth + 1 > !max_depth then max_depth := depth + 1;
                Queue.add (action :: rev_trace) frontier
              end
          end)
        (enabled_actions st)
    done;
    if !states >= scenario.max_states || not (Queue.is_empty frontier) then
      complete := !violation <> None || Queue.is_empty frontier;
    {
      scenario_name = scenario.name;
      states = !states;
      transitions = !transitions;
      max_depth = !max_depth;
      complete = !complete;
      violation = !violation;
    }

(* --- Bundled scenarios ------------------------------------------------- *)

let unit_cost (_ : Graph.link) = 1.0

let mk_topo names duplexes =
  let g = Graph.create ~names:(Array.of_list names) in
  List.iter
    (fun (a, b) -> Graph.add_duplex g a b ~capacity:1.0e7 ~prop_delay:0.001)
    duplexes;
  g

let triangle () = mk_topo [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c"); ("a", "c") ]

let line3 () = mk_topo [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ]

let diamond () =
  mk_topo [ "s"; "u"; "v"; "t" ]
    [ ("s", "u"); ("s", "v"); ("u", "t"); ("v", "t") ]

let ring4 () =
  mk_topo [ "a"; "b"; "c"; "d" ] [ ("a", "b"); ("b", "c"); ("c", "d"); ("d", "a") ]

let ring5 () =
  mk_topo [ "a"; "b"; "c"; "d"; "e" ]
    [ ("a", "b"); ("b", "c"); ("c", "d"); ("d", "e"); ("e", "a") ]

(* Each scenario owns its topology and the search owns every router and
   channel it creates, so the sweep fans out on the pool; stats come
   back in scenario order regardless of job count. *)
let explore_all ?jobs ?invariants scenarios =
  Mdr_util.Pool.map_list ?jobs (fun sc -> explore ?invariants sc) scenarios

let bundled ?(max_states = 30_000) () =
  [
    {
      name = "triangle-3";
      topo = triangle ();
      cost = unit_cost;
      change = None;
      losses = 0;
      max_states;
    };
    {
      name = "line-3+cost-change";
      topo = line3 ();
      cost = unit_cost;
      change = Some (0, 1, 5.0);
      losses = 0;
      max_states;
    };
    {
      name = "triangle-3+cost-change+loss";
      topo = triangle ();
      cost = unit_cost;
      change = Some (0, 1, 4.0);
      losses = 1;
      max_states;
    };
    {
      name = "diamond-4";
      topo = diamond ();
      cost = unit_cost;
      change = None;
      losses = 0;
      max_states;
    };
    {
      name = "diamond-4+cost-change";
      topo = diamond ();
      cost = unit_cost;
      change = Some (0, 1, 3.0);
      losses = 0;
      max_states;
    };
    {
      name = "ring-4+loss";
      topo = ring4 ();
      cost = unit_cost;
      change = None;
      losses = 1;
      max_states;
    };
    {
      name = "ring-5";
      topo = ring5 ();
      cost = unit_cost;
      change = None;
      losses = 0;
      max_states;
    };
  ]

(* --- Rendering --------------------------------------------------------- *)

let describe_action topo = function
  | Deliver { src; dst } ->
    Printf.sprintf "deliver %s -> %s" (Graph.name topo src) (Graph.name topo dst)
  | Lose { src; dst } ->
    Printf.sprintf "LOSE    %s -> %s" (Graph.name topo src) (Graph.name topo dst)
  | Change_cost { src; dst; cost } ->
    Printf.sprintf "cost    %s -> %s := %g" (Graph.name topo src)
      (Graph.name topo dst) cost

let render_trace topo v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "invariant [%s] violated for destination %s after %d step(s) (minimal \
        interleaving):\n"
       v.failed (Graph.name topo v.at_dst) (List.length v.trace));
  List.iteri
    (fun i a -> Buffer.add_string b (Printf.sprintf "  %2d. %s\n" (i + 1) (describe_action topo a)))
    v.trace;
  if v.trace = [] then Buffer.add_string b "  (violated in the initial state)\n";
  Buffer.contents b

let render_stats st =
  Printf.sprintf "%-28s %8d states %9d transitions  depth %3d  %s%s"
    st.scenario_name st.states st.transitions st.max_depth
    (if st.complete then "exhaustive" else "bounded")
    (match st.violation with
    | None -> "  ok"
    | Some v -> Printf.sprintf "  VIOLATION [%s]" v.failed)
