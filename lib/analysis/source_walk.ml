(* The one source walker both static passes share.

   [Lint_rules] (per-file syntactic rules) and [Check_rules] (the
   whole-program effect analyzer) must agree on what "the repo's
   sources" means: the same directories, the same file discovery
   order, the same path normalization, the same parser. Centralizing
   that here is what lets the allowlist convention ([lint/<rule>.allow]
   with root-relative paths) work identically for both. *)

exception Parse_failure of { file : string; message : string }

(* lib and bin carry the product; examples and test are scanned too
   because a nondeterministic example or a racy test fixture undermines
   the same byte-identical claims the product rules guard. *)
let default_dirs = [ "lib"; "bin"; "examples"; "test" ]

let normalize path =
  (* Strip a leading "./" so scopes and allowlists match either form. *)
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let rec ml_files_under dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           let path = Filename.concat dir entry in
           if Sys.is_directory path then
             if entry = "_build" || entry.[0] = '.' then [] else ml_files_under path
           else if Filename.check_suffix entry ".ml" then [ path ]
           else [])

let strip ~root file =
  (* Report paths relative to the repo root. *)
  let r = root ^ "/" in
  if String.length file > String.length r && String.sub file 0 (String.length r) = r
  then String.sub file (String.length r) (String.length file - String.length r)
  else file

let files ?(dirs = default_dirs) ~root () =
  List.concat_map (fun d -> ml_files_under (Filename.concat root d)) dirs
  |> List.map (fun path -> (path, normalize (strip ~root path)))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let parse_file path =
  let src = read_file path in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  try Parse.implementation lexbuf
  with exn -> raise (Parse_failure { file = path; message = Printexc.to_string exn })

(* --- dune library discovery ------------------------------------------- *)

(* A module's canonical name depends on the wrapping library: a file
   under a dune [(library (name mdr_util))] is [Mdr_util.Pool] to the
   rest of the repo, while executable modules (bin, examples, test)
   stand alone. The parse here is deliberately crude — find "(library"
   then the first "(name <token>)" after it — which is exactly the
   shape every dune file in this repo uses. *)
let library_name_of_dune path =
  if not (Sys.file_exists path) then None
  else
    let src = read_file path in
    let len = String.length src in
    let rec find_sub pat i =
      let pl = String.length pat in
      if i + pl > len then None
      else if String.sub src i pl = pat then Some (i + pl)
      else find_sub pat (i + 1)
    in
    match find_sub "(library" 0 with
    | None -> None
    | Some i -> (
      match find_sub "(name" i with
      | None -> None
      | Some j ->
        let rec skip_ws k = if k < len && (src.[k] = ' ' || src.[k] = '\n' || src.[k] = '\t') then skip_ws (k + 1) else k in
        let s = skip_ws j in
        let rec tok k =
          if k < len
             && (match src.[k] with
                | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
                | _ -> false)
          then tok (k + 1)
          else k
        in
        let e = tok s in
        if e > s then Some (String.sub src s (e - s)) else None)

(* The library (if any) owning [dir]: the nearest dune file at [dir]
   or above (but not above [root]) containing a library stanza. *)
let rec library_of_dir ~root dir =
  let dune = Filename.concat dir "dune" in
  match library_name_of_dune dune with
  | Some name -> Some name
  | None ->
    if dir = root || String.length dir <= String.length root then None
    else library_of_dir ~root (Filename.dirname dir)

let module_name_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let canonical_module ~root path =
  match library_of_dir ~root (Filename.dirname path) with
  | Some lib -> String.capitalize_ascii lib ^ "." ^ module_name_of_file path
  | None -> module_name_of_file path
