(* Repo-specific static analysis over our own OCaml sources.

   The rules encode invariants the simulator's correctness depends on
   but the type checker cannot see:

   - [float-compare]: raw [=] / [<>] / [compare] on floats. Polymorphic
     equality disagrees with IEEE on nan, and exact equality of
     computed floats is a latent bug; use [Float.equal] (sentinels) or
     [Mdr_util.Float_cmp] (computed values).
   - [hashtbl-iteration]: [Hashtbl.iter]/[Hashtbl.fold] in protocol and
     simulation code ([lib/routing], [lib/netsim], [lib/eventsim],
     [lib/faults]). Bucket order depends on insertion history; if it
     leaks into router state or event scheduling, runs stop being a
     deterministic function of the seed. Use [Mdr_util.Sorted_tbl].
   - [catch-all-handler]: [try ... with _ ->] (or a catch-all variable)
     in protocol code swallows assertion failures and protocol
     invariant violations; match specific exceptions.
   - [obj-magic]: [Obj.magic] anywhere.
   - [stdout-in-lib]: printing to stdout from inside [lib/]; libraries
     must return or log data, only binaries own the terminal.

   The pass parses each .ml file with compiler-libs and walks the
   Parsetree with [Ast_iterator]; it needs no type information, so the
   float rule is syntactic: a comparison is flagged when either operand
   is evidently a float (float literal, float arithmetic, a known
   float constant, or [float_of_int ...]).

   Every rule has an allowlist at [lint/<rule>.allow] ([path] or
   [path:line] lines, [#] comments) so deliberate exceptions are
   recorded in-tree and reviewed like code. *)

type violation = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type rule = {
  name : string;
  what : string;  (* one-line description for reports *)
  scope : string list;  (* directory prefixes; [] = everywhere scanned *)
}

let rules =
  [
    {
      name = "float-compare";
      what = "raw =/<>/compare on floats; use Float.equal or Mdr_util.Float_cmp";
      scope = [];
    };
    {
      name = "hashtbl-iteration";
      what =
        "Hashtbl.iter/fold in protocol or sim code; use Mdr_util.Sorted_tbl for \
         deterministic order";
      scope = [ "lib/routing"; "lib/netsim"; "lib/eventsim"; "lib/faults" ];
    };
    {
      name = "catch-all-handler";
      what = "catch-all exception handler in protocol code; match specific exceptions";
      scope = [ "lib/routing"; "lib/faults" ];
    };
    { name = "obj-magic"; what = "Obj.magic defeats the type system"; scope = [] };
    {
      name = "stdout-in-lib";
      what = "printing to stdout from a library; return strings or use stderr";
      scope = [ "lib" ];
    };
  ]

let find_rule name = List.find (fun r -> r.name = name) rules

(* --- Scoping and allowlists ----------------------------------------- *)

let normalize path =
  (* Strip a leading "./" so scopes and allowlists match either form. *)
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let in_scope rule ~file =
  let file = normalize file in
  rule.scope = []
  || List.exists
       (fun prefix ->
         let p = prefix ^ "/" in
         String.length file >= String.length p
         && String.sub file 0 (String.length p) = p)
       rule.scope

type allow = { allow_file : string; allow_line : int option }

let parse_allow_line s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then None
  else
    match String.rindex_opt s ':' with
    | Some i -> (
      let path = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt tail with
      | Some line -> Some { allow_file = normalize path; allow_line = Some line }
      | None -> Some { allow_file = normalize s; allow_line = None })
    | None -> Some { allow_file = normalize s; allow_line = None }

let load_allowlist ~allow_dir rule =
  let path = Filename.concat allow_dir (rule.name ^ ".allow") in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         match parse_allow_line (input_line ic) with
         | Some a -> entries := a :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let allowed allows v =
  List.exists
    (fun a ->
      a.allow_file = normalize v.file
      && match a.allow_line with None -> true | Some l -> l = v.line)
    allows

(* --- The AST walk ----------------------------------------------------- *)

open Parsetree

let loc_of (l : Location.t) =
  (l.loc_start.pos_lnum, l.loc_start.pos_cnum - l.loc_start.pos_bol)

let longident e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

let float_constants =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

(* Syntactic evidence that [e] has type float. Deliberately shallow:
   no type inference, just the shapes that occur in practice. *)
let is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident name; _ } -> List.mem name float_constants
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident ("Float" | "Stdlib"), name); _ }
    ->
    List.mem name float_constants
  | Pexp_apply (f, _) -> (
    match longident f with
    | Some (Longident.Lident op) when List.mem op float_ops -> true
    | Some (Longident.Lident "float_of_int") -> true
    | Some (Longident.Ldot (Longident.Lident "Float", fn)) ->
      (* Float.min, Float.abs, Float.of_int, ... return floats;
         predicates and conversions out of float do not. *)
      not
        (List.mem fn
           [ "equal"; "compare"; "is_nan"; "is_finite"; "is_integer"; "to_int"; "to_string" ])
    | _ -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ }) ->
    true
  | _ -> false

let is_catch_all case =
  (match case.pc_lhs.ppat_desc with
  | Ppat_any -> true
  | Ppat_var _ -> true
  | _ -> false)
  && case.pc_guard = None

let hashtbl_target = function
  | Longident.Ldot (Longident.Lident "Hashtbl", ("iter" | "fold" as fn)) -> Some fn
  | _ -> None

let stdout_printer = function
  | Longident.Lident
      (( "print_endline" | "print_string" | "print_newline" | "print_int"
       | "print_float" | "print_char" ) as fn) ->
    Some fn
  | Longident.Ldot (Longident.Lident "Printf", "printf") -> Some "Printf.printf"
  | Longident.Ldot (Longident.Lident "Format", ("printf" | "print_string" as fn)) ->
    Some ("Format." ^ fn)
  | _ -> None

let scan_structure ~file structure =
  let out = ref [] in
  let report rule_name loc message =
    let rule = find_rule rule_name in
    if in_scope rule ~file then begin
      let line, col = loc_of loc in
      out := { rule = rule_name; file = normalize file; line; col; message } :: !out
    end
  in
  let check_expr e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match longident f with
      | Some (Longident.Lident (("=" | "<>" | "==" | "!=") as op))
        when List.exists (fun (_, a) -> is_floatish a) args ->
        report "float-compare" e.pexp_loc
          (Printf.sprintf "float compared with (%s)" op)
      | Some
          (( Longident.Lident "compare"
           | Longident.Ldot (Longident.Lident "Stdlib", "compare") ))
        when List.exists (fun (_, a) -> is_floatish a) args ->
        report "float-compare" e.pexp_loc "polymorphic compare on a float"
      | Some _ | None -> ())
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Obj", "magic"); _ } ->
      report "obj-magic" e.pexp_loc "Obj.magic"
    | Pexp_ident { txt; _ } -> (
      (* The ident node is reached whether the function is applied or
         passed as a value, so applied uses are not reported twice. *)
      (match hashtbl_target txt with
      | Some fn ->
        report "hashtbl-iteration" e.pexp_loc
          (Printf.sprintf "Hashtbl.%s iterates in bucket order" fn)
      | None -> ());
      match stdout_printer txt with
      | Some fn -> report "stdout-in-lib" e.pexp_loc (fn ^ " writes to stdout")
      | None -> ())
    | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          if is_catch_all c then
            report "catch-all-handler" c.pc_lhs.ppat_loc
              "catch-all exception handler")
        cases
    | _ -> ());
    ()
  in
  let super = Ast_iterator.default_iterator in
  let iter =
    {
      super with
      expr =
        (fun self e ->
          check_expr e;
          super.expr self e);
    }
  in
  iter.structure iter structure;
  List.rev !out

(* --- Driver ----------------------------------------------------------- *)

exception Parse_failure of { file : string; message : string }

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  try Parse.implementation lexbuf
  with exn ->
    raise
      (Parse_failure
         { file = path; message = Printexc.to_string exn })

let scan_file ?path ~file () =
  (* [path]: where to read the source (defaults to [file]); [file]: the
     root-relative name used for scoping and reporting. *)
  let path = match path with Some p -> p | None -> file in
  scan_structure ~file (parse_file path)

let rec ml_files_under dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           let path = Filename.concat dir entry in
           if Sys.is_directory path then
             if entry = "_build" || entry.[0] = '.' then [] else ml_files_under path
           else if Filename.check_suffix entry ".ml" then [ path ]
           else [])

type stale = {
  stale_rule : string;
  stale_file : string;
  stale_line : int option;
}

type report = {
  files_scanned : int;
  violations : violation list;  (* after allowlisting *)
  suppressed : int;  (* allowlisted hits *)
  stale_allow : stale list;  (* allowlist entries that matched nothing *)
}

let run ?(dirs = [ "lib"; "bin" ]) ?(allow_dir = "lint") ~root () =
  let allows =
    List.map (fun r -> (r.name, load_allowlist ~allow_dir:(Filename.concat root allow_dir) r)) rules
  in
  let files =
    List.concat_map (fun d -> ml_files_under (Filename.concat root d)) dirs
  in
  let strip file =
    (* Report paths relative to the repo root. *)
    let r = root ^ "/" in
    if String.length file > String.length r && String.sub file 0 (String.length r) = r
    then String.sub file (String.length r) (String.length file - String.length r)
    else file
  in
  let all = List.concat_map (fun f -> scan_file ~path:f ~file:(strip f) ()) files in
  let kept, suppressed =
    List.partition (fun v -> not (allowed (List.assoc v.rule allows) v)) all
  in
  (* Allowlist hygiene: an entry that suppresses nothing is a stale
     exception — the code it excused was fixed or moved, and keeping
     the entry would silently excuse the *next* violation at that
     spot. Fail on it like any other violation. *)
  let stale_allow =
    List.concat_map
      (fun (rule_name, entries) ->
        List.filter_map
          (fun a ->
            let matches v =
              v.rule = rule_name
              && a.allow_file = v.file
              && match a.allow_line with None -> true | Some l -> l = v.line
            in
            if List.exists matches all then None
            else
              Some
                {
                  stale_rule = rule_name;
                  stale_file = a.allow_file;
                  stale_line = a.allow_line;
                })
          entries)
      allows
  in
  {
    files_scanned = List.length files;
    violations = kept;
    suppressed = List.length suppressed;
    stale_allow;
  }

(* --- Rendering --------------------------------------------------------- *)

let render_violation v =
  Printf.sprintf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

let render_stale s =
  Printf.sprintf "lint/%s.allow: stale entry %s%s (suppresses nothing; remove it)"
    s.stale_rule s.stale_file
    (match s.stale_line with None -> "" | Some l -> Printf.sprintf ":%d" l)

let render report =
  let b = Buffer.create 256 in
  List.iter
    (fun v -> Buffer.add_string b (render_violation v ^ "\n"))
    report.violations;
  List.iter
    (fun s -> Buffer.add_string b (render_stale s ^ "\n"))
    report.stale_allow;
  Buffer.add_string b
    (Printf.sprintf
       "lint: %d file(s), %d violation(s), %d allowlisted, %d stale allowlist \
        entr%s\n"
       report.files_scanned
       (List.length report.violations)
       report.suppressed
       (List.length report.stale_allow)
       (if List.length report.stale_allow = 1 then "y" else "ies"));
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json report =
  let violation v =
    Printf.sprintf
      {|    {"rule": "%s", "file": "%s", "line": %d, "col": %d, "message": "%s"}|}
      (json_escape v.rule) (json_escape v.file) v.line v.col (json_escape v.message)
  in
  let stale s =
    Printf.sprintf {|    {"rule": "%s", "file": "%s", "line": %s}|}
      (json_escape s.stale_rule) (json_escape s.stale_file)
      (match s.stale_line with None -> "null" | Some l -> string_of_int l)
  in
  Printf.sprintf
    "{\n\
    \  \"files_scanned\": %d,\n\
    \  \"suppressed\": %d,\n\
    \  \"violations\": [\n\
     %s\n\
    \  ],\n\
    \  \"stale_allow\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    report.files_scanned report.suppressed
    (String.concat ",\n" (List.map violation report.violations))
    (String.concat ",\n" (List.map stale report.stale_allow))
