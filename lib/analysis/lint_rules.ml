(* Repo-specific per-file static analysis over our own OCaml sources.

   The rules encode invariants the simulator's correctness depends on
   but the type checker cannot see:

   - [float-compare]: raw [=] / [<>] / [compare] on floats. Polymorphic
     equality disagrees with IEEE on nan, and exact equality of
     computed floats is a latent bug; use [Float.equal] (sentinels) or
     [Mdr_util.Float_cmp] (computed values).
   - [hashtbl-iteration]: [Hashtbl.iter]/[Hashtbl.fold] in protocol and
     simulation code ([lib/routing], [lib/netsim], [lib/eventsim],
     [lib/faults]). Bucket order depends on insertion history; if it
     leaks into router state or event scheduling, runs stop being a
     deterministic function of the seed. Use [Mdr_util.Sorted_tbl].
   - [catch-all-handler]: [try ... with _ ->] (or a catch-all variable)
     in protocol code swallows assertion failures and protocol
     invariant violations; match specific exceptions.
   - [obj-magic]: [Obj.magic] anywhere.
   - [stdout-in-lib]: printing to stdout from inside [lib/]; libraries
     must return or log data, only binaries own the terminal.

   The pass parses each .ml file with compiler-libs and walks the
   Parsetree with [Ast_iterator]; it needs no type information, so the
   float rule is syntactic: a comparison is flagged when either operand
   is evidently a float (float literal, float arithmetic, a known
   float constant, or [float_of_int ...]).

   Every rule has an allowlist at [lint/<rule>.allow] ([path] or
   [path:line] lines, [#] comments) so deliberate exceptions are
   recorded in-tree and reviewed like code. Cross-module rules —
   domain races, determinism taint into fingerprints, crash-safety of
   the journal/snapshot write paths — are [Check_rules], not here:
   this pass is deliberately per-file and syntactic. *)

type violation = Report.finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type rule = {
  name : string;
  what : string;  (* one-line description for reports *)
  scope : string list;  (* directory prefixes; [] = everywhere scanned *)
}

let rules =
  [
    {
      name = "float-compare";
      what = "raw =/<>/compare on floats; use Float.equal or Mdr_util.Float_cmp";
      scope = [];
    };
    {
      name = "hashtbl-iteration";
      what =
        "Hashtbl.iter/fold in protocol or sim code; use Mdr_util.Sorted_tbl for \
         deterministic order";
      scope = [ "lib/routing"; "lib/netsim"; "lib/eventsim"; "lib/faults" ];
    };
    {
      name = "catch-all-handler";
      what = "catch-all exception handler in protocol code; match specific exceptions";
      scope = [ "lib/routing"; "lib/faults" ];
    };
    { name = "obj-magic"; what = "Obj.magic defeats the type system"; scope = [] };
    {
      name = "stdout-in-lib";
      what = "printing to stdout from a library; return strings or use stderr";
      scope = [ "lib" ];
    };
  ]

let find_rule name = List.find (fun r -> r.name = name) rules

(* --- Scoping ---------------------------------------------------------- *)

let in_scope rule ~file =
  let file = Source_walk.normalize file in
  rule.scope = []
  || List.exists
       (fun prefix ->
         let p = prefix ^ "/" in
         String.length file >= String.length p
         && String.sub file 0 (String.length p) = p)
       rule.scope

(* --- The AST walk ----------------------------------------------------- *)

open Parsetree

let loc_of (l : Location.t) =
  (l.loc_start.pos_lnum, l.loc_start.pos_cnum - l.loc_start.pos_bol)

let longident e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

let float_constants =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

(* Syntactic evidence that [e] has type float. Deliberately shallow:
   no type inference, just the shapes that occur in practice. *)
let is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident name; _ } -> List.mem name float_constants
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident ("Float" | "Stdlib"), name); _ }
    ->
    List.mem name float_constants
  | Pexp_apply (f, _) -> (
    match longident f with
    | Some (Longident.Lident op) when List.mem op float_ops -> true
    | Some (Longident.Lident "float_of_int") -> true
    | Some (Longident.Ldot (Longident.Lident "Float", fn)) ->
      (* Float.min, Float.abs, Float.of_int, ... return floats;
         predicates and conversions out of float do not. *)
      not
        (List.mem fn
           [ "equal"; "compare"; "is_nan"; "is_finite"; "is_integer"; "to_int"; "to_string" ])
    | _ -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ }) ->
    true
  | _ -> false

let is_catch_all case =
  (match case.pc_lhs.ppat_desc with
  | Ppat_any -> true
  | Ppat_var _ -> true
  | _ -> false)
  && case.pc_guard = None

let hashtbl_target = function
  | Longident.Ldot (Longident.Lident "Hashtbl", ("iter" | "fold" as fn)) -> Some fn
  | _ -> None

let stdout_printer = function
  | Longident.Lident
      (( "print_endline" | "print_string" | "print_newline" | "print_int"
       | "print_float" | "print_char" ) as fn) ->
    Some fn
  | Longident.Ldot (Longident.Lident "Printf", "printf") -> Some "Printf.printf"
  | Longident.Ldot (Longident.Lident "Format", ("printf" | "print_string" as fn)) ->
    Some ("Format." ^ fn)
  | _ -> None

let scan_structure ~file structure =
  let out = ref [] in
  let report rule_name loc message =
    let rule = find_rule rule_name in
    if in_scope rule ~file then begin
      let line, col = loc_of loc in
      out :=
        { rule = rule_name; file = Source_walk.normalize file; line; col; message }
        :: !out
    end
  in
  let check_expr e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match longident f with
      | Some (Longident.Lident (("=" | "<>" | "==" | "!=") as op))
        when List.exists (fun (_, a) -> is_floatish a) args ->
        report "float-compare" e.pexp_loc
          (Printf.sprintf "float compared with (%s)" op)
      | Some
          (( Longident.Lident "compare"
           | Longident.Ldot (Longident.Lident "Stdlib", "compare") ))
        when List.exists (fun (_, a) -> is_floatish a) args ->
        report "float-compare" e.pexp_loc "polymorphic compare on a float"
      | Some _ | None -> ())
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Obj", "magic"); _ } ->
      report "obj-magic" e.pexp_loc "Obj.magic"
    | Pexp_ident { txt; _ } -> (
      (* The ident node is reached whether the function is applied or
         passed as a value, so applied uses are not reported twice. *)
      (match hashtbl_target txt with
      | Some fn ->
        report "hashtbl-iteration" e.pexp_loc
          (Printf.sprintf "Hashtbl.%s iterates in bucket order" fn)
      | None -> ());
      match stdout_printer txt with
      | Some fn -> report "stdout-in-lib" e.pexp_loc (fn ^ " writes to stdout")
      | None -> ())
    | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          if is_catch_all c then
            report "catch-all-handler" c.pc_lhs.ppat_loc
              "catch-all exception handler")
        cases
    | _ -> ());
    ()
  in
  let super = Ast_iterator.default_iterator in
  let iter =
    {
      super with
      expr =
        (fun self e ->
          check_expr e;
          super.expr self e);
    }
  in
  iter.structure iter structure;
  List.rev !out

(* --- Driver ----------------------------------------------------------- *)

let scan_file ?path ~file () =
  (* [path]: where to read the source (defaults to [file]); [file]: the
     root-relative name used for scoping and reporting. *)
  let path = match path with Some p -> p | None -> file in
  scan_structure ~file (Source_walk.parse_file path)

type stale = Report.stale = {
  stale_rule : string;
  stale_file : string;
  stale_line : int option;
}

type report = {
  files_scanned : int;
  violations : violation list;  (* after allowlisting *)
  suppressed : int;  (* allowlisted hits *)
  stale_allow : stale list;  (* allowlist entries that matched nothing *)
}

let run ?(dirs = Source_walk.default_dirs) ?(allow_dir = "lint") ~root () =
  let files = Source_walk.files ~dirs ~root () in
  let all = List.concat_map (fun (path, file) -> scan_file ~path ~file ()) files in
  let violations, suppressed, stale_allow =
    Report.apply_allowlists
      ~allow_dir:(Filename.concat root allow_dir)
      ~rule_names:(List.map (fun r -> r.name) rules)
      all
  in
  { files_scanned = List.length files; violations; suppressed; stale_allow }

(* --- Rendering --------------------------------------------------------- *)

let to_report r =
  {
    Report.tool = "lint";
    files_scanned = r.files_scanned;
    findings = r.violations;
    suppressed = r.suppressed;
    stale_allow = r.stale_allow;
    rule_infos =
      List.map (fun ru -> { Report.rule_id = ru.name; about = ru.what }) rules;
  }

let render_violation = Report.render_finding
let render r = Report.render (to_report r)
let to_json r = Report.to_json (to_report r)
let to_sarif r = Report.to_sarif (to_report r)
