module Server = Mdr_server.Server
module Update = Mdr_server.Update

type config = {
  dead_after : float;
  max_sessions : int;
  rate : float;
  burst : float;
  max_strikes : int;
  quarantine_for : float;
  busy_retry : float;
  record_applies : bool;
}

let default_config =
  {
    dead_after = 10.0;
    max_sessions = 64;
    rate = 100.0;
    burst = 50.0;
    max_strikes = 5;
    quarantine_for = 30.0;
    busy_retry = 5.0;
    record_applies = false;
  }

type stats = {
  opened : int;
  reaped : int;
  closed : int;
  evicted : int;
  busy_rejected : int;
  frames : int;
  malformed : int;
  duplicates : int;
  rejects : int;
  fenced : int;
  throttled : int;
  quarantines : int;
  claims : int;
  applied : int;
}

let zero_stats =
  {
    opened = 0;
    reaped = 0;
    closed = 0;
    evicted = 0;
    busy_rejected = 0;
    frames = 0;
    malformed = 0;
    duplicates = 0;
    rejects = 0;
    fenced = 0;
    throttled = 0;
    quarantines = 0;
    claims = 0;
    applied = 0;
  }

type session = {
  id : int;
  transport : Transport.t;
  dec : Frame.decoder;
  mutable client : int option;  (* None until a Hello binds it *)
  mutable last_activity : float;
}

(* Per-client admission state. Runtime-only by design: strikes and
   quarantines are about the live peer's behavior, not about the
   durable routing state, so they reset with the process. *)
type astate = {
  mutable tokens : float;
  mutable refilled : float;
  mutable strikes : int;
  mutable quarantined_until : float;
  mutable shed : int;  (* submits refused by this client's bucket *)
}

type t = {
  server : Server.t;
  config : config;
  mutable sessions : session list;  (* newest first *)
  mutable next_id : int;
  mutable stats : stats;
  mutable malformed_seen : int;  (* reported by a previous heartbeat *)
  admission : (int, astate) Hashtbl.t;
  mutable quarantine_alarms : (int * int) list;  (* client, strikes; drained by heartbeat *)
  mutable log_rev : Update.entry list;  (* accepted entries, newest first *)
}

let create ?(config = default_config) server =
  if not (Float.is_finite config.dead_after) || config.dead_after <= 0.0 then
    invalid_arg "Wire_server: dead_after must be finite and positive";
  if config.max_sessions < 1 then
    invalid_arg "Wire_server: max_sessions must be >= 1";
  if not (Float.is_finite config.rate) || config.rate <= 0.0 then
    invalid_arg "Wire_server: rate must be finite and positive";
  if not (Float.is_finite config.burst) || config.burst < 1.0 then
    invalid_arg "Wire_server: burst must be >= 1";
  if config.max_strikes < 1 then
    invalid_arg "Wire_server: max_strikes must be >= 1";
  if not (Float.is_finite config.quarantine_for) || config.quarantine_for <= 0.0
  then invalid_arg "Wire_server: quarantine_for must be finite and positive";
  if not (Float.is_finite config.busy_retry) || config.busy_retry < 0.0 then
    invalid_arg "Wire_server: busy_retry must be finite and >= 0";
  {
    server;
    config;
    sessions = [];
    next_id = 0;
    stats = zero_stats;
    malformed_seen = 0;
    admission = Hashtbl.create 16;
    quarantine_alarms = [];
    log_rev = [];
  }

let core t = t.server
let stats t = t.stats
let sessions t = List.length t.sessions
let applied_log t = List.rev t.log_rev

let astate t ~now client =
  match Hashtbl.find_opt t.admission client with
  | Some a -> a
  | None ->
      let a =
        {
          tokens = t.config.burst;
          refilled = now;
          strikes = 0;
          quarantined_until = neg_infinity;
          shed = 0;
        }
      in
      Hashtbl.replace t.admission client a;
      a

let shed_of t ~client =
  match Hashtbl.find_opt t.admission client with Some a -> a.shed | None -> 0

let quarantined t ~now ~client =
  match Hashtbl.find_opt t.admission client with
  | Some a -> now < a.quarantined_until
  | None -> false

let reply s ~now msg =
  Transport.send s.transport ~now (Frame.encode (Proto.encode_server msg))

let drop t s =
  s.transport.Transport.close ();
  t.sessions <- List.filter (fun s' -> s'.id <> s.id) t.sessions

(* Admission point one: the session table is a bounded resource. A
   redial storm parks half-open (Greeting-stage) sessions; those are
   the ones we may evict, least-recently-active first. Sessions a
   Hello has bound are never evicted — only reaped for idleness. *)
let attach t ~now transport =
  if List.length t.sessions >= t.config.max_sessions then begin
    let idle_greeting =
      List.fold_left
        (fun acc s ->
          match (s.client, acc) with
          | Some _, _ -> acc
          | None, None -> Some s
          | None, Some best ->
              if s.last_activity < best.last_activity then Some s else acc)
        None t.sessions
    in
    match idle_greeting with
    | Some victim ->
        t.stats <- { t.stats with evicted = t.stats.evicted + 1 };
        drop t victim
    | None -> ()
  end;
  if List.length t.sessions >= t.config.max_sessions then begin
    (* Every slot is a bound session: refuse politely and hang up. *)
    Transport.send transport ~now Frame.greeting;
    Transport.send transport ~now
      (Frame.encode
         (Proto.encode_server
            (Proto.Busy
               { retry_after = t.config.busy_retry; reason = "session table full" })));
    transport.Transport.close ();
    t.stats <- { t.stats with busy_rejected = t.stats.busy_rejected + 1 };
    None
  end
  else begin
    t.next_id <- t.next_id + 1;
    let s =
      {
        id = t.next_id;
        transport;
        dec = Frame.decoder ();
        client = None;
        last_activity = now;
      }
    in
    Transport.send transport ~now Frame.greeting;
    t.sessions <- s :: t.sessions;
    t.stats <- { t.stats with opened = t.stats.opened + 1 };
    Some s.id
  end

(* A strike against a bound client: gap/fenced submits and malformed
   frames are each evidence of a broken or hostile peer. Enough of
   them quarantines the client — all its sessions close, and new
   Hellos are refused until the quarantine lapses. *)
let strike t ~now client =
  let a = astate t ~now client in
  a.strikes <- a.strikes + 1;
  if a.strikes >= t.config.max_strikes && now >= a.quarantined_until then begin
    a.quarantined_until <- now +. t.config.quarantine_for;
    t.stats <- { t.stats with quarantines = t.stats.quarantines + 1 };
    t.quarantine_alarms <- (client, a.strikes) :: t.quarantine_alarms;
    a.strikes <- 0;
    let victims = List.filter (fun s -> s.client = Some client) t.sessions in
    List.iter
      (fun s ->
        t.stats <- { t.stats with closed = t.stats.closed + 1 };
        drop t s)
      victims
  end

(* Admission point two: the per-client token bucket. Returns the delay
   to advertise when the bucket is empty. *)
let take_token t ~now client =
  let a = astate t ~now client in
  a.tokens <-
    Float.min t.config.burst (a.tokens +. ((now -. a.refilled) *. t.config.rate));
  a.refilled <- now;
  if a.tokens >= 1.0 then begin
    a.tokens <- a.tokens -. 1.0;
    Ok ()
  end
  else begin
    a.shed <- a.shed + 1;
    Error ((1.0 -. a.tokens) /. t.config.rate)
  end

let record t entry = if t.config.record_applies then t.log_rev <- entry :: t.log_rev

(* Execute one well-formed message; returns false when the session
   should close (Bye, quarantine, protocol violation). *)
let execute t s ~now msg =
  match msg with
  | Proto.Hello { client; last_acked = _ } ->
      if quarantined t ~now ~client then begin
        reply s ~now
          (Proto.Busy { retry_after = t.config.busy_retry; reason = "quarantined" });
        t.stats <- { t.stats with busy_rejected = t.stats.busy_rejected + 1 };
        false
      end
      else begin
        s.client <- Some client;
        (* The client's durable mark is the resume point regardless of
           what it believes it has seen acked. *)
        reply s ~now
          (Proto.Welcome
             {
               session = s.id;
               client;
               seq = Server.client_seq t.server ~client;
               epoch = Server.client_epoch t.server ~client;
             });
        true
      end
  | Proto.Claim { scope } -> (
      match s.client with
      | None -> false (* protocol violation: Claim before Hello *)
      | Some client -> (
          let sscope =
            match scope with
            | Proto.All -> Server.All
            | Proto.Pairs l -> Server.Pairs l
          in
          let seq_before = Server.seq t.server in
          match Server.claim t.server ~now ~client ~scope:sscope with
          | epoch ->
              if Server.alive t.server then begin
                (* Only a grant that consumed a journal sequence number is
                   a new entry; an idempotent re-grant journaled nothing
                   and must not be recorded, or the harvested log would
                   diverge from the durable order. *)
                if Server.seq t.server > seq_before then begin
                  t.stats <- { t.stats with claims = t.stats.claims + 1 };
                  let pairs =
                    List.filter_map
                      (fun (p, (owner, e)) ->
                        if owner = client && e = epoch then Some p else None)
                      (Server.claims t.server)
                  in
                  record t (Update.Claim { client; epoch; pairs })
                end;
                reply s ~now (Proto.Granted { epoch });
                true
              end
              else true (* the append tore: the server is dead, no reply *)
          | exception Invalid_argument reason ->
              t.stats <- { t.stats with rejects = t.stats.rejects + 1 };
              reply s ~now (Proto.Reject { seq = 0; reason });
              true))
  | Proto.Submit { seq; epoch; update } -> (
      match s.client with
      | None -> false (* protocol violation: Submit before Hello *)
      | Some client -> (
          match take_token t ~now client with
          | Error retry_after ->
              t.stats <- { t.stats with throttled = t.stats.throttled + 1 };
              reply s ~now (Proto.Throttled { seq; retry_after });
              true
          | Ok () -> (
              match Server.submit t.server ~now ~client ~seq ~epoch update with
              | Server.Applied ->
                  t.stats <- { t.stats with applied = t.stats.applied + 1 };
                  record t (Update.Apply { client; seq; epoch; update });
                  reply s ~now (Proto.Ack { client; seq });
                  true
              | Server.Duplicate ->
                  (* Already durable: a client retry or a chaos-
                     duplicated frame. Re-ack; never re-apply. *)
                  t.stats <- { t.stats with duplicates = t.stats.duplicates + 1 };
                  reply s ~now (Proto.Ack { client; seq });
                  true
              | Server.Seq_gap { expected } ->
                  t.stats <- { t.stats with rejects = t.stats.rejects + 1 };
                  reply s ~now
                    (Proto.Reject
                       {
                         seq;
                         reason =
                           Printf.sprintf "sequence gap (expected seq %d)" expected;
                       });
                  strike t ~now client;
                  true
              | Server.Fenced { owner = _; current } ->
                  t.stats <- { t.stats with fenced = t.stats.fenced + 1 };
                  reply s ~now (Proto.Fenced { seq; held = epoch; current });
                  strike t ~now client;
                  true
              | Server.Died -> true (* torn append: the server is dead, no reply *)
              | exception Invalid_argument reason ->
                  (* Validation failure: nothing was journaled, the
                     server is still clean — the update alone is
                     refused. *)
                  t.stats <- { t.stats with rejects = t.stats.rejects + 1 };
                  reply s ~now (Proto.Reject { seq; reason });
                  true)))
  | Proto.Ping { nonce } ->
      reply s ~now (Proto.Pong { nonce });
      true
  | Proto.Get_fingerprint ->
      reply s ~now (Proto.Fingerprint (Server.fingerprint t.server));
      true
  | Proto.Bye -> false

let step_session t s ~now =
  let executed = ref 0 in
  (* Pull everything the transport has for us before decoding. *)
  let rec pull () =
    match s.transport.Transport.recv ~now with
    | Some chunk ->
        Frame.feed s.dec chunk;
        pull ()
    | None -> ()
  in
  pull ();
  let closing = ref false in
  let continue = ref true in
  while !continue do
    if not (Server.alive t.server) then continue := false
    else
      match Frame.next s.dec with
      | `Need_more -> continue := false
      | `Corrupt _reason ->
          (* After a corrupt stream there is no frame boundary to trust;
             drop the session and let the client reconnect. *)
          t.stats <-
            {
              t.stats with
              malformed = t.stats.malformed + 1;
              closed = t.stats.closed + 1;
            };
          Option.iter (fun c -> strike t ~now c) s.client;
          closing := true;
          continue := false
      | `Frame payload -> (
          s.last_activity <- now;
          match Proto.decode_client payload with
          | msg ->
              t.stats <- { t.stats with frames = t.stats.frames + 1 };
              incr executed;
              if not (execute t s ~now msg) then begin
                t.stats <- { t.stats with closed = t.stats.closed + 1 };
                closing := true;
                continue := false
              end
          | exception Proto.Corrupt _reason ->
              t.stats <-
                {
                  t.stats with
                  malformed = t.stats.malformed + 1;
                  closed = t.stats.closed + 1;
                };
              Option.iter (fun c -> strike t ~now c) s.client;
              closing := true;
              continue := false)
  done;
  (match s.transport.Transport.status () with
  | `Closed when not !closing ->
      t.stats <- { t.stats with closed = t.stats.closed + 1 };
      closing := true
  | `Closed | `Open -> ());
  (* A strike may already have dropped the session; drop is idempotent. *)
  if !closing then drop t s;
  !executed

let step t ~now =
  List.fold_left (fun acc s -> acc + step_session t s ~now) 0 t.sessions

let shutdown t ~now =
  let n = List.length t.sessions in
  List.iter
    (fun s ->
      reply s ~now Proto.Shutdown;
      t.stats <- { t.stats with closed = t.stats.closed + 1 };
      drop t s)
    t.sessions;
  n

type alarm =
  | Core of Server.alarm
  | Dead_session of { id : int; idle : float }
  | Malformed_frames of { frames : int }
  | Quarantined of { client : int; strikes : int }

let heartbeat t ~now =
  let alarms = ref [] in
  List.iter
    (fun s ->
      let idle = now -. s.last_activity in
      if idle > t.config.dead_after then begin
        t.stats <- { t.stats with reaped = t.stats.reaped + 1 };
        drop t s;
        alarms := Dead_session { id = s.id; idle } :: !alarms
      end)
    t.sessions;
  List.iter
    (fun (client, strikes) -> alarms := Quarantined { client; strikes } :: !alarms)
    t.quarantine_alarms;
  t.quarantine_alarms <- [];
  let malformed_new = t.stats.malformed - t.malformed_seen in
  if malformed_new > 0 then begin
    t.malformed_seen <- t.stats.malformed;
    alarms := Malformed_frames { frames = malformed_new } :: !alarms
  end;
  List.iter
    (fun a -> alarms := Core a :: !alarms)
    (Server.heartbeat t.server ~now);
  !alarms

let metrics t ~now =
  let b = Buffer.create 1024 in
  let gauge name v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" name name v)
  in
  let counter name v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v)
  in
  let h = Server.health t.server ~now in
  gauge "mdr_sessions" (sessions t);
  gauge "mdr_seq" h.Server.seq;
  gauge "mdr_epoch" (Server.epoch t.server);
  gauge "mdr_journal_records" h.Server.journal_records;
  gauge "mdr_queue_depth" h.Server.queue_depth;
  Buffer.add_string b
    (Printf.sprintf "# TYPE mdr_staleness_seconds gauge\nmdr_staleness_seconds %.3f\n"
       h.Server.staleness);
  counter "mdr_heartbeats_total" h.Server.heartbeats;
  counter "mdr_applied_total" t.stats.applied;
  counter "mdr_claims_total" t.stats.claims;
  counter "mdr_duplicates_total" t.stats.duplicates;
  counter "mdr_rejects_total" t.stats.rejects;
  counter "mdr_fenced_total" t.stats.fenced;
  counter "mdr_throttled_total" t.stats.throttled;
  counter "mdr_quarantines_total" t.stats.quarantines;
  counter "mdr_malformed_total" t.stats.malformed;
  counter "mdr_sessions_opened_total" t.stats.opened;
  counter "mdr_sessions_reaped_total" t.stats.reaped;
  counter "mdr_sessions_evicted_total" t.stats.evicted;
  counter "mdr_busy_rejected_total" t.stats.busy_rejected;
  counter "mdr_ingest_shed_total" h.Server.ingest.Mdr_server.Ingest.shed;
  counter "mdr_torn_tails_total" h.Server.corruption.Server.torn_tails;
  counter "mdr_snapshot_fallbacks_total" h.Server.corruption.Server.snapshot_fallbacks;
  Buffer.contents b
