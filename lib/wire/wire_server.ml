module Server = Mdr_server.Server

type config = { dead_after : float }

let default_config = { dead_after = 10.0 }

type stats = {
  opened : int;
  reaped : int;
  closed : int;
  frames : int;
  malformed : int;
  duplicates : int;
  rejects : int;
  applied : int;
}

let zero_stats =
  {
    opened = 0;
    reaped = 0;
    closed = 0;
    frames = 0;
    malformed = 0;
    duplicates = 0;
    rejects = 0;
    applied = 0;
  }

type session = {
  id : int;
  transport : Transport.t;
  dec : Frame.decoder;
  mutable last_activity : float;
}

type t = {
  server : Server.t;
  config : config;
  mutable sessions : session list;  (* newest first *)
  mutable next_id : int;
  mutable stats : stats;
  mutable malformed_seen : int;  (* reported by a previous heartbeat *)
}

let create ?(config = default_config) server =
  if not (Float.is_finite config.dead_after) || config.dead_after <= 0.0 then
    invalid_arg "Wire_server: dead_after must be finite and positive";
  { server; config; sessions = []; next_id = 0; stats = zero_stats; malformed_seen = 0 }

let core t = t.server
let stats t = t.stats
let sessions t = List.length t.sessions

let attach t ~now transport =
  t.next_id <- t.next_id + 1;
  let s = { id = t.next_id; transport; dec = Frame.decoder (); last_activity = now } in
  Transport.send transport ~now Frame.greeting;
  t.sessions <- s :: t.sessions;
  t.stats <- { t.stats with opened = t.stats.opened + 1 };
  s.id

let drop t s =
  s.transport.Transport.close ();
  t.sessions <- List.filter (fun s' -> s'.id <> s.id) t.sessions

let reply s ~now msg =
  Transport.send s.transport ~now (Frame.encode (Proto.encode_server msg))

(* Execute one well-formed message; returns false when the session
   should close (Bye). *)
let execute t s ~now msg =
  match msg with
  | Proto.Hello { client = _; last_acked = _ } ->
      (* The server's durable seq is the resume point regardless of
         what the client believes it has seen acked. *)
      reply s ~now (Proto.Welcome { session = s.id; seq = Server.seq t.server });
      true
  | Proto.Submit { seq; update } ->
      let sseq = Server.seq t.server in
      if seq <= sseq then begin
        (* Already durable: a client retry or a chaos-duplicated
           frame. Re-ack; never re-apply. *)
        t.stats <- { t.stats with duplicates = t.stats.duplicates + 1 };
        reply s ~now (Proto.Ack { seq })
      end
      else if seq = sseq + 1 then begin
        match Server.apply t.server ~now update with
        | () ->
            t.stats <- { t.stats with applied = t.stats.applied + 1 };
            reply s ~now (Proto.Ack { seq })
        | exception Invalid_argument reason ->
            (* Validation failure: nothing was journaled, the server
               is still clean — the update alone is refused. *)
            t.stats <- { t.stats with rejects = t.stats.rejects + 1 };
            reply s ~now (Proto.Reject { seq; reason })
      end
      else begin
        t.stats <- { t.stats with rejects = t.stats.rejects + 1 };
        reply s ~now
          (Proto.Reject
             { seq; reason = Printf.sprintf "sequence gap (durable seq is %d)" sseq })
      end;
      true
  | Proto.Ping { nonce } ->
      reply s ~now (Proto.Pong { nonce });
      true
  | Proto.Get_fingerprint ->
      reply s ~now (Proto.Fingerprint (Server.fingerprint t.server));
      true
  | Proto.Bye -> false

let step_session t s ~now =
  let executed = ref 0 in
  (* Pull everything the transport has for us before decoding. *)
  let rec pull () =
    match s.transport.Transport.recv ~now with
    | Some chunk ->
        Frame.feed s.dec chunk;
        pull ()
    | None -> ()
  in
  pull ();
  let closing = ref false in
  let continue = ref true in
  while !continue do
    match Frame.next s.dec with
    | `Need_more -> continue := false
    | `Corrupt _reason ->
        (* After a corrupt stream there is no frame boundary to trust;
           drop the session and let the client reconnect. *)
        t.stats <-
          {
            t.stats with
            malformed = t.stats.malformed + 1;
            closed = t.stats.closed + 1;
          };
        closing := true;
        continue := false
    | `Frame payload -> (
        s.last_activity <- now;
        match Proto.decode_client payload with
        | msg ->
            t.stats <- { t.stats with frames = t.stats.frames + 1 };
            incr executed;
            if not (execute t s ~now msg) then begin
              t.stats <- { t.stats with closed = t.stats.closed + 1 };
              closing := true;
              continue := false
            end
        | exception Proto.Corrupt _reason ->
            t.stats <-
              {
                t.stats with
                malformed = t.stats.malformed + 1;
                closed = t.stats.closed + 1;
              };
            closing := true;
            continue := false)
  done;
  (match s.transport.Transport.status () with
  | `Closed when not !closing ->
      t.stats <- { t.stats with closed = t.stats.closed + 1 };
      closing := true
  | `Closed | `Open -> ());
  if !closing then drop t s;
  !executed

let step t ~now =
  List.fold_left (fun acc s -> acc + step_session t s ~now) 0 t.sessions

type alarm =
  | Core of Server.alarm
  | Dead_session of { id : int; idle : float }
  | Malformed_frames of { frames : int }

let heartbeat t ~now =
  let alarms = ref [] in
  List.iter
    (fun s ->
      let idle = now -. s.last_activity in
      if idle > t.config.dead_after then begin
        t.stats <- { t.stats with reaped = t.stats.reaped + 1 };
        drop t s;
        alarms := Dead_session { id = s.id; idle } :: !alarms
      end)
    t.sessions;
  let malformed_new = t.stats.malformed - t.malformed_seen in
  if malformed_new > 0 then begin
    t.malformed_seen <- t.stats.malformed;
    alarms := Malformed_frames { frames = malformed_new } :: !alarms
  end;
  List.iter
    (fun a -> alarms := Core a :: !alarms)
    (Server.heartbeat t.server ~now);
  !alarms
