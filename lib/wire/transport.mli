(** The socket-like byte-stream abstraction under the wire protocol.

    A transport moves opaque byte chunks in one direction per call and
    knows nothing about frames: framing is {!Frame}'s job, chaos is
    {!Mdr_faults.Wirefault}'s, and both compose over any transport.
    Time is explicit ([~now]) so the in-memory pipe, the chaos wrapper
    and the deterministic audit all run on logical clocks; the real
    socket transport simply ignores scheduling hints it cannot honor.

    A transport is {e fail-stop}: after [close] (or a peer/kernel
    event that amounts to one) [status] is [`Closed], sends are
    dropped and recv returns [None] forever. Callers react by
    redialing, never by retrying on a dead handle. *)

type t = {
  send_at : now:float -> at:float -> string -> unit;
      (** queue [chunk] for delivery no earlier than [at]
          ([at >= now]; the real socket transport sends immediately) *)
  recv : now:float -> string option;
      (** next delivered chunk, if one is due at [now] *)
  close : unit -> unit;
  status : unit -> [ `Open | `Closed ];
}

val send : t -> now:float -> string -> unit
(** [send_at ~at:now]. *)

val pipe : unit -> t * t
(** A connected in-memory duplex pair on a logical clock. Chunks
    become visible to the peer's [recv] once [now] reaches their
    delivery time, in [(deliver_at, send order)] order — so delayed
    chunks genuinely reorder against later undelayed ones. Closing
    either end closes both and drops everything still queued. *)

val of_fd : Unix.file_descr -> t
(** A transport over a connected socket, switched to non-blocking
    mode. Sends buffer internally and flush opportunistically on every
    [send]/[recv]; EOF and connection-reset errors close the
    transport. [at] hints are ignored — the kernel owns delivery
    timing. *)

val with_chaos : line:Mdr_faults.Wirefault.t -> t -> t
(** Route every send through the fault [line] (flips, truncation,
    duplication, delay, stalls, disconnects); receives pass through
    untouched, so wrap each direction's sender with its own line. When
    the line draws a disconnect the underlying transport is closed —
    both peers observe the line cut, as with a real connection. *)
