module Rng = Mdr_util.Rng
module Pool = Mdr_util.Pool
module Tab = Mdr_util.Tab
module Server = Mdr_server.Server
module Update = Mdr_server.Update
module Procfault = Mdr_faults.Procfault
module Wirefault = Mdr_faults.Wirefault
module Recovery = Mdr_faults.Recovery

type result = {
  seed : int;
  intensity : float;
  updates : int;
  ok : bool;
  client_done : bool;
  fingerprint_ok : bool;
  exactly_once : bool;
  lfi : bool;
  settled : bool;
  reconnects : int;
  dial_failures : int;
  retries : int;
  fast_forwarded : int;
  duplicates : int;
  malformed : int;
  reaped : int;
  chaos : Wirefault.counts;
  reconnect_latencies : float list;
  reconnect_slo : Recovery.slo;
  wall_s : float;
}

let default_audit_config = { Server.default_config with snapshot_every = 16 }

let to_update = function
  | Procfault.Cost_change { src; dst; cost } -> Update.Set_cost { src; dst; cost }
  | Procfault.Fail { a; b } -> Update.Link_down { a; b }
  | Procfault.Restore { a; b; cost } -> Update.Link_up { a; b; cost }

(* Rng.substream index namespace within one run: 0 = update stream,
   1 = client backoff jitter, 2 + 2c / 3 + 2c = connection c's
   client->server / server->client fault lines. *)

let dt = 0.02
let max_steps = 400_000
let heartbeat_every = 25 (* steps: one watchdog tick per 0.5 logical s *)

let run ?(config = default_audit_config) ?wire_config ?client_config ?(updates = 60)
    ?(cost = Procfault.default_base_cost) ~intensity ~dir ~topo ~seed () =
  if updates < 1 then invalid_arg "Wire_audit.run: updates must be >= 1";
  if not (Float.is_finite intensity) || intensity < 0.0 then
    invalid_arg "Wire_audit.run: intensity must be finite and >= 0";
  let stream =
    Array.of_list
      (List.map to_update
         (Procfault.stream ~rng:(Rng.substream ~seed ~index:0) ~topo ~updates ()))
  in
  (* Reference: the same stream applied directly, no wire in the way. *)
  let ref_srv =
    Server.create ~config ~dir:(Filename.concat dir "ref") ~topo ~cost ()
  in
  Array.iteri (fun i u -> Server.apply ref_srv ~now:(float_of_int (i + 1)) u) stream;
  let fp_ref = Server.fingerprint ref_srv in
  Server.close ref_srv;
  (* Chaos: the wire session on a logical clock. *)
  let srv = Server.create ~config ~dir:(Filename.concat dir "chaos") ~topo ~cost () in
  let wsrv = Wire_server.create ?config:wire_config srv in
  let params = Wirefault.scale Wirefault.default_params ~intensity in
  let lines = ref [] in
  let conns = ref 0 in
  let dial ~now =
    let c = !conns in
    incr conns;
    (* Refuse every seventh dial outright: connection backoff must be
       exercised even on seeds whose lines rarely die. *)
    if c mod 7 = 6 then None
    else begin
      let line idx = Wirefault.create ~params ~rng:(Rng.substream ~seed ~index:idx) () in
      let to_server = line (2 + (2 * c)) in
      let to_client = line (3 + (2 * c)) in
      lines := to_server :: to_client :: !lines;
      let client_end, server_end = Transport.pipe () in
      ignore
        (Wire_server.attach wsrv ~now (Transport.with_chaos ~line:to_client server_end));
      Some (Transport.with_chaos ~line:to_server client_end)
    end
  in
  let client =
    Client.create ?config:client_config ~rng:(Rng.substream ~seed ~index:1) ~dial
      ~updates:stream ()
  in
  let now = ref 0.0 in
  let steps = ref 0 in
  while (not (Client.finished client)) && !steps < max_steps do
    incr steps;
    now := float_of_int !steps *. dt;
    Client.step client ~now:!now;
    ignore (Wire_server.step wsrv ~now:!now);
    if !steps mod heartbeat_every = 0 then ignore (Wire_server.heartbeat wsrv ~now:!now)
  done;
  let cstats = Client.stats client in
  let wstats = Wire_server.stats wsrv in
  let fp_chaos = Server.fingerprint srv in
  let client_done = match Client.phase client with Client.Done -> true | _ -> false in
  let fingerprint_ok =
    String.equal fp_chaos fp_ref
    && (match Client.fingerprint client with
       | Some fp -> String.equal fp fp_ref
       | None -> false)
  in
  let exactly_once =
    wstats.Wire_server.applied = updates && Server.seq srv = updates
  in
  let lfi = Server.lfi_ok srv in
  let settled = Server.settled srv in
  Server.close srv;
  let chaos =
    List.fold_left
      (fun acc l -> Wirefault.add_counts acc (Wirefault.counts l))
      Wirefault.zero_counts !lines
  in
  {
    seed;
    intensity;
    updates;
    ok = client_done && fingerprint_ok && exactly_once && lfi && settled;
    client_done;
    fingerprint_ok;
    exactly_once;
    lfi;
    settled;
    reconnects = cstats.Client.reconnects;
    dial_failures = cstats.Client.dial_failures;
    retries = cstats.Client.retries;
    fast_forwarded = cstats.Client.fast_forwarded;
    duplicates = wstats.Wire_server.duplicates;
    malformed = wstats.Wire_server.malformed;
    reaped = wstats.Wire_server.reaped;
    chaos;
    reconnect_latencies = cstats.Client.reconnect_latencies;
    reconnect_slo = Recovery.slo cstats.Client.reconnect_latencies;
    wall_s = !now;
  }

(* Allowlisted for [domain-race]: the wall-clock the checker traces
   through Server.create only times restore duration (health
   telemetry). Everything the audit asserts — fingerprints, apply
   counts, LFI — flows from the per-cell seed substreams, so parallel
   cells stay bit-deterministic. *)
let run_grid ?jobs ?updates ~dir ~topo ~seeds ~intensities () =
  let cells =
    Array.of_list
      (List.concat_map
         (fun seed -> List.map (fun intensity -> (seed, intensity)) intensities)
         seeds)
  in
  Array.to_list
    (Pool.map_array ?jobs
       (fun (seed, intensity) ->
         let cell_dir =
           Filename.concat dir (Printf.sprintf "seed_%d_i%g" seed intensity)
         in
         run ?updates ~intensity ~dir:cell_dir ~topo ~seed ())
       cells)

(* ---- the multi-writer audit ------------------------------------------ *)

(* Rng.substream index namespace within one multi run: 4 = server kill
   schedule, 5 = client kill schedule, 10 + k = client k's update
   stream, 40 + k = client k's backoff jitter, 1000 + 2c / 1001 + 2c =
   connection c's client->server / server->client fault lines. *)

type client_report = {
  client : int;
  client_done : bool;
  updates : int;
  acked : int;
  resumes : int;  (** times the client process was killed and restarted *)
  reconnects : int;
  dial_failures : int;
  retries : int;
  fast_forwarded : int;
  throttled : int;
  shed : int;  (** server-side token-bucket sheds for this client *)
  reconnect_latencies : float list;
  reconnect_slo : Recovery.slo;
}

type multi_result = {
  seed : int;
  intensity : float;
  clients : int;
  updates_per_client : int;
  ok : bool;
  all_done : bool;
  fingerprint_ok : bool;
  replay_ok : bool;
  exactly_once : bool;
  marks_ok : bool;
  no_stale_applies : bool;
  lfi : bool;
  settled : bool;
  server_kills : int;
  client_kills : int;
  grants : int;
  fenced : int;
  throttled : int;
  quarantines : int;
  evicted : int;
  duplicates : int;
  malformed : int;
  chaos : Wirefault.counts;
  per_client : client_report list;
  reconnect_slo : Recovery.slo;
  wall_s : float;
}

(* The sequential reference: replay the recorded accepted order through
   the fenced submit path on a fresh server. Router state is path-
   dependent (per-router LSU counters), so equivalence is against the
   order the chaos run actually accepted — itself a deterministic
   function of the seed. Every entry must replay cleanly: a submit that
   does not come back [Applied], or a claim granted a different epoch,
   means the chaos run accepted something the fence or the per-client
   sequence discipline should have refused. *)
let replay_reference ~config ~dir ~topo ~cost entries =
  let ref_srv = Server.create ~config ~dir ~topo ~cost () in
  let ok = ref true in
  List.iteri
    (fun i e ->
      let now = float_of_int (i + 1) in
      match e with
      | Update.Apply { client; seq; epoch; update } -> (
          match Server.submit ref_srv ~now ~client ~seq ~epoch update with
          | Server.Applied -> ()
          | _ -> ok := false)
      | Update.Claim { client; epoch; pairs } ->
          if Server.claim ref_srv ~now ~client ~scope:(Server.Pairs pairs) <> epoch
          then ok := false)
    entries;
  let fp = Server.fingerprint ref_srv in
  Server.close ref_srv;
  (fp, !ok)

(* What the writer tables must look like after replaying [entries]. *)
let expected_tables entries =
  let marks = Hashtbl.create 16 in
  let claims = Hashtbl.create 32 in
  let epoch = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Update.Apply { client; seq; _ } -> Hashtbl.replace marks client seq
      | Update.Claim { client; epoch = e'; pairs } ->
          List.iter (fun p -> Hashtbl.replace claims p (client, e')) pairs;
          if e' > !epoch then epoch := e')
    entries;
  ( (Mdr_util.Sorted_tbl.bindings marks : (int * int) list),
    (Mdr_util.Sorted_tbl.bindings claims : ((int * int) * (int * int)) list),
    !epoch )

let run_multi ?(config = default_audit_config) ?wire_config ?client_config
    ?(clients = 4) ?(updates = 30) ?(server_kills = 3) ?(client_kills = 2)
    ?(cost = Procfault.default_base_cost) ~intensity ~dir ~topo ~seed () =
  if clients < 2 then invalid_arg "Wire_audit.run_multi: clients must be >= 2";
  if updates < 1 then invalid_arg "Wire_audit.run_multi: updates must be >= 1";
  if server_kills < 0 || client_kills < 0 then
    invalid_arg "Wire_audit.run_multi: kill counts must be >= 0";
  if not (Float.is_finite intensity) || intensity < 0.0 then
    invalid_arg "Wire_audit.run_multi: intensity must be finite and >= 0";
  let n = clients in
  let total = n * updates in
  let buckets = Array.of_list (Procfault.partition_pairs ~clients:n topo) in
  let streams =
    Array.init n (fun i ->
        Array.of_list
          (List.map to_update
             (Procfault.stream_on
                ~rng:(Rng.substream ~seed ~index:(10 + i + 1))
                ~topo ~pairs:buckets.(i) ~updates ())))
  in
  let wcfg =
    let base = Option.value wire_config ~default:Wire_server.default_config in
    { base with Wire_server.record_applies = true }
  in
  let chaos_dir = Filename.concat dir "chaos" in
  let srv = ref (Server.create ~config ~dir:chaos_dir ~topo ~cost ()) in
  let wsrv = ref (Wire_server.create ~config:wcfg !srv) in
  let params = Wirefault.scale Wirefault.default_params ~intensity in
  let lines = ref [] in
  let conns = ref 0 in
  let transports = Array.make (n + 1) None in
  let dial_for k ~now =
    let c = !conns in
    incr conns;
    (* Refuse every ninth dial outright: connection backoff must be
       exercised even on seeds whose lines rarely die. *)
    if c mod 9 = 8 then None
    else begin
      let line idx = Wirefault.create ~params ~rng:(Rng.substream ~seed ~index:idx) () in
      let to_server = line (1000 + (2 * c)) in
      let to_client = line (1001 + (2 * c)) in
      lines := to_server :: to_client :: !lines;
      let client_end, server_end = Transport.pipe () in
      match
        Wire_server.attach !wsrv ~now (Transport.with_chaos ~line:to_client server_end)
      with
      | Some _ ->
          let tr = Transport.with_chaos ~line:to_server client_end in
          transports.(k) <- Some tr;
          Some tr
      | None -> None
    end
  in
  let mk_client k =
    Client.create ?config:client_config ~client_id:k
      ~claim:(Proto.Pairs buckets.(k - 1))
      ~rng:(Rng.substream ~seed ~index:(40 + k))
      ~dial:(fun ~now -> dial_for k ~now)
      ~updates:streams.(k - 1) ()
  in
  let cl = Array.init (n + 1) (fun k -> mk_client (max 1 k)) in
  let hist : Client.stats list array = Array.make (n + 1) [] in
  let resumes = Array.make (n + 1) 0 in
  let shed_acc = Array.make (n + 1) 0 in
  (* Accepted entries harvested from every server incarnation, in
     acceptance order (chunks newest first until flattened). *)
  let chunks = ref [] in
  let acc_applied = ref 0 in
  let w_throttled = ref 0 and w_fenced = ref 0 and w_quarantines = ref 0 in
  let w_evicted = ref 0 and w_duplicates = ref 0 and w_malformed = ref 0 in
  let w_grants = ref 0 in
  let marks_ok = ref true in
  let harvest () =
    let ws = Wire_server.stats !wsrv in
    chunks := Wire_server.applied_log !wsrv :: !chunks;
    acc_applied := !acc_applied + ws.Wire_server.applied;
    w_throttled := !w_throttled + ws.Wire_server.throttled;
    w_fenced := !w_fenced + ws.Wire_server.fenced;
    w_quarantines := !w_quarantines + ws.Wire_server.quarantines;
    w_evicted := !w_evicted + ws.Wire_server.evicted;
    w_duplicates := !w_duplicates + ws.Wire_server.duplicates;
    w_malformed := !w_malformed + ws.Wire_server.malformed;
    w_grants := !w_grants + ws.Wire_server.claims;
    for k = 1 to n do
      shed_acc.(k) <- shed_acc.(k) + Wire_server.shed_of !wsrv ~client:k
    done
  in
  let entries_so_far () = List.concat (List.rev !chunks) in
  let server_restores = ref 0 in
  let revive ~now =
    harvest ();
    ignore (Wire_server.shutdown !wsrv ~now);
    let restored = Server.restore ~config ~now ~dir:chaos_dir ~topo ~cost () in
    (* The tentpole's restore gate: every client's durable mark, the
       claim table and the epoch counter must come back byte-identical
       to what the accepted entries imply. *)
    let em, ec, ee = expected_tables (entries_so_far ()) in
    if
      Server.marks restored <> em
      || Server.claims restored <> ec
      || Server.epoch restored <> ee
    then marks_ok := false;
    srv := restored;
    wsrv := Wire_server.create ~config:wcfg restored;
    incr server_restores
  in
  let skill_sched =
    ref
      (if server_kills = 0 then []
       else
         Procfault.random_kills
           ~rng:(Rng.substream ~seed ~index:4)
           ~updates:total ~kills:server_kills)
  in
  let ckill_sched =
    ref
      (if client_kills = 0 then []
       else
         List.mapi
           (fun i (k : Procfault.kill) -> (k.Procfault.after, (i mod n) + 1))
           (Procfault.random_kills
              ~rng:(Rng.substream ~seed ~index:5)
              ~updates:total ~kills:client_kills))
  in
  let applied_total () =
    !acc_applied + (Wire_server.stats !wsrv).Wire_server.applied
  in
  let all_finished () =
    let fin = ref true in
    for k = 1 to n do
      if not (Client.finished cl.(k)) then fin := false
    done;
    !fin
  in
  let now = ref 0.0 in
  let steps = ref 0 in
  while (not (all_finished ())) && !steps < max_steps do
    incr steps;
    now := float_of_int !steps *. dt;
    if not (Server.alive !srv) then revive ~now:!now;
    for k = 1 to n do
      Client.step cl.(k) ~now:!now
    done;
    ignore (Wire_server.step !wsrv ~now:!now);
    (match !skill_sched with
    | kh :: rest when Server.alive !srv && applied_total () >= kh.Procfault.after ->
        skill_sched := rest;
        (match kh.Procfault.where with
        | Procfault.Between -> Server.close !srv
        | Procfault.Mid_snapshot -> Server.checkpoint ~torn_after:kh.Procfault.torn_at !srv
        | Procfault.Mid_journal -> Server.arm_torn !srv ~torn_at:kh.Procfault.torn_at)
    | _ -> ());
    (match !ckill_sched with
    | (after, k) :: rest when applied_total () >= after ->
        ckill_sched := rest;
        if not (Client.finished cl.(k)) then begin
          hist.(k) <- Client.stats cl.(k) :: hist.(k);
          (match transports.(k) with
          | Some tr -> tr.Transport.close ()
          | None -> ());
          transports.(k) <- None;
          cl.(k) <- mk_client k;
          resumes.(k) <- resumes.(k) + 1
        end
    | _ -> ());
    if !steps mod heartbeat_every = 0 && Server.alive !srv then
      ignore (Wire_server.heartbeat !wsrv ~now:!now)
  done;
  if not (Server.alive !srv) then revive ~now:!now;
  harvest ();
  let entries = entries_so_far () in
  for k = 1 to n do
    hist.(k) <- Client.stats cl.(k) :: hist.(k)
  done;
  let all_done =
    Array.for_all
      (fun k -> match Client.phase cl.(k) with Client.Done -> true | _ -> false)
      (Array.init n (fun i -> i + 1))
  in
  let fp_chaos = Server.fingerprint !srv in
  let lfi = Server.lfi_ok !srv in
  let settled = Server.settled !srv in
  let exactly_once =
    let counts = Array.make (n + 1) 0 in
    let seen = Hashtbl.create (2 * total) in
    let dup = ref false in
    List.iter
      (fun e ->
        match e with
        | Update.Apply { client; seq; _ } ->
            if client >= 1 && client <= n then counts.(client) <- counts.(client) + 1;
            if Hashtbl.mem seen (client, seq) then dup := true;
            Hashtbl.replace seen (client, seq) ()
        | Update.Claim _ -> ())
      entries;
    (not !dup)
    && Array.for_all (fun k -> counts.(k) = updates) (Array.init n (fun i -> i + 1))
    && Array.for_all
         (fun k -> Server.client_seq !srv ~client:k = updates)
         (Array.init n (fun i -> i + 1))
  in
  Server.close !srv;
  let fp_ref, replay_ok =
    replay_reference ~config ~dir:(Filename.concat dir "ref") ~topo ~cost entries
  in
  let fingerprint_ok = String.equal fp_chaos fp_ref in
  let no_stale_applies = replay_ok && !w_fenced = 0 in
  let chaos =
    List.fold_left
      (fun acc l -> Wirefault.add_counts acc (Wirefault.counts l))
      Wirefault.zero_counts !lines
  in
  let per_client =
    List.map
      (fun k ->
        let sts = hist.(k) in
        let sum f = List.fold_left (fun a s -> a + f s) 0 sts in
        let lats =
          List.concat_map (fun (s : Client.stats) -> s.Client.reconnect_latencies) sts
        in
        {
          client = k;
          client_done =
            (match Client.phase cl.(k) with Client.Done -> true | _ -> false);
          updates;
          acked = sum (fun s -> s.Client.acked);
          resumes = resumes.(k);
          reconnects = sum (fun s -> s.Client.reconnects);
          dial_failures = sum (fun s -> s.Client.dial_failures);
          retries = sum (fun s -> s.Client.retries);
          fast_forwarded = sum (fun s -> s.Client.fast_forwarded);
          throttled = sum (fun s -> s.Client.throttled);
          shed = shed_acc.(k);
          reconnect_latencies = lats;
          reconnect_slo = Recovery.slo lats;
        })
      (List.init n (fun i -> i + 1))
  in
  let pooled =
    List.concat_map (fun (r : client_report) -> r.reconnect_latencies) per_client
  in
  {
    seed;
    intensity;
    clients = n;
    updates_per_client = updates;
    ok =
      all_done && fingerprint_ok && replay_ok && exactly_once && !marks_ok
      && no_stale_applies && lfi && settled;
    all_done;
    fingerprint_ok;
    replay_ok;
    exactly_once;
    marks_ok = !marks_ok;
    no_stale_applies;
    lfi;
    settled;
    server_kills;
    client_kills;
    grants = !w_grants;
    fenced = !w_fenced;
    throttled = !w_throttled;
    quarantines = !w_quarantines;
    evicted = !w_evicted;
    duplicates = !w_duplicates;
    malformed = !w_malformed;
    chaos;
    per_client;
    reconnect_slo = Recovery.slo pooled;
    wall_s = !now;
  }

(* Allowlisted for [domain-race] for the same reason as [run_grid]:
   only restore-duration telemetry touches the wall clock; every
   asserted quantity flows from per-cell seed substreams. *)
let run_multi_grid ?jobs ?updates ?server_kills ?client_kills ?(intensity = 1.0)
    ~dir ~topo ~seeds ~client_counts () =
  let cells =
    Array.of_list
      (List.concat_map
         (fun seed -> List.map (fun c -> (seed, c)) client_counts)
         seeds)
  in
  Array.to_list
    (Pool.map_array ?jobs
       (fun (seed, clients) ->
         let cell_dir =
           Filename.concat dir (Printf.sprintf "seed_%d_c%d" seed clients)
         in
         run_multi ?updates ?server_kills ?client_kills ~clients ~intensity
           ~dir:cell_dir ~topo ~seed ())
       cells)

let multi_slo_by_clients results =
  let counts =
    List.sort_uniq Stdlib.compare (List.map (fun r -> r.clients) results)
  in
  List.map
    (fun c ->
      let samples =
        List.concat_map
          (fun r ->
            if r.clients = c then
              List.concat_map
                (fun (p : client_report) -> p.reconnect_latencies)
                r.per_client
            else [])
          results
      in
      (c, Recovery.slo samples))
    counts

let report_multi results =
  Tab.render
    ~header:
      [
        "seed"; "clients"; "ok"; "done"; "fp"; "replay"; "once"; "marks"; "grants";
        "fenced"; "shed"; "dups"; "evicted"; "quar"; "reconnect p95 s"; "wall s";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.seed;
           string_of_int r.clients;
           (if r.ok then "yes" else "NO");
           (if r.all_done then "yes" else "NO");
           (if r.fingerprint_ok then "yes" else "NO");
           (if r.replay_ok then "yes" else "NO");
           (if r.exactly_once then "yes" else "NO");
           (if r.marks_ok then "yes" else "NO");
           string_of_int r.grants;
           string_of_int r.fenced;
           string_of_int r.throttled;
           string_of_int r.duplicates;
           string_of_int r.evicted;
           string_of_int r.quarantines;
           Printf.sprintf "%.3f" r.reconnect_slo.Recovery.p95;
           Printf.sprintf "%.1f" r.wall_s;
         ])
       results)

let slo_by_intensity (results : result list) =
  let intensities =
    List.sort_uniq Float.compare (List.map (fun (r : result) -> r.intensity) results)
  in
  List.map
    (fun i ->
      let samples =
        List.concat_map
          (fun (r : result) ->
            if Float.equal r.intensity i then r.reconnect_latencies else [])
          results
      in
      (i, Recovery.slo samples))
    intensities

let report (results : result list) =
  Tab.render
    ~header:
      [
        "seed"; "intensity"; "ok"; "reconnects"; "dial fails"; "retries"; "dups";
        "malformed"; "reaped"; "flips"; "trunc"; "disc"; "reconnect p95 s"; "wall s";
      ]
    (List.map
       (fun (r : result) ->
         [
           string_of_int r.seed;
           Printf.sprintf "%g" r.intensity;
           (if r.ok then "yes" else "NO");
           string_of_int r.reconnects;
           string_of_int r.dial_failures;
           string_of_int r.retries;
           string_of_int r.duplicates;
           string_of_int r.malformed;
           string_of_int r.reaped;
           string_of_int r.chaos.Wirefault.flips;
           string_of_int r.chaos.Wirefault.truncations;
           string_of_int r.chaos.Wirefault.disconnects;
           Printf.sprintf "%.3f" r.reconnect_slo.Recovery.p95;
           Printf.sprintf "%.1f" r.wall_s;
         ])
       results)
