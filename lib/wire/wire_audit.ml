module Rng = Mdr_util.Rng
module Pool = Mdr_util.Pool
module Tab = Mdr_util.Tab
module Server = Mdr_server.Server
module Update = Mdr_server.Update
module Procfault = Mdr_faults.Procfault
module Wirefault = Mdr_faults.Wirefault
module Recovery = Mdr_faults.Recovery

type result = {
  seed : int;
  intensity : float;
  updates : int;
  ok : bool;
  client_done : bool;
  fingerprint_ok : bool;
  exactly_once : bool;
  lfi : bool;
  settled : bool;
  reconnects : int;
  dial_failures : int;
  retries : int;
  fast_forwarded : int;
  duplicates : int;
  malformed : int;
  reaped : int;
  chaos : Wirefault.counts;
  reconnect_latencies : float list;
  reconnect_slo : Recovery.slo;
  wall_s : float;
}

let default_audit_config = { Server.default_config with snapshot_every = 16 }

let to_update = function
  | Procfault.Cost_change { src; dst; cost } -> Update.Set_cost { src; dst; cost }
  | Procfault.Fail { a; b } -> Update.Link_down { a; b }
  | Procfault.Restore { a; b; cost } -> Update.Link_up { a; b; cost }

(* Rng.substream index namespace within one run: 0 = update stream,
   1 = client backoff jitter, 2 + 2c / 3 + 2c = connection c's
   client->server / server->client fault lines. *)

let dt = 0.02
let max_steps = 400_000
let heartbeat_every = 25 (* steps: one watchdog tick per 0.5 logical s *)

let run ?(config = default_audit_config) ?wire_config ?client_config ?(updates = 60)
    ?(cost = Procfault.default_base_cost) ~intensity ~dir ~topo ~seed () =
  if updates < 1 then invalid_arg "Wire_audit.run: updates must be >= 1";
  if not (Float.is_finite intensity) || intensity < 0.0 then
    invalid_arg "Wire_audit.run: intensity must be finite and >= 0";
  let stream =
    Array.of_list
      (List.map to_update
         (Procfault.stream ~rng:(Rng.substream ~seed ~index:0) ~topo ~updates ()))
  in
  (* Reference: the same stream applied directly, no wire in the way. *)
  let ref_srv =
    Server.create ~config ~dir:(Filename.concat dir "ref") ~topo ~cost ()
  in
  Array.iteri (fun i u -> Server.apply ref_srv ~now:(float_of_int (i + 1)) u) stream;
  let fp_ref = Server.fingerprint ref_srv in
  Server.close ref_srv;
  (* Chaos: the wire session on a logical clock. *)
  let srv = Server.create ~config ~dir:(Filename.concat dir "chaos") ~topo ~cost () in
  let wsrv = Wire_server.create ?config:wire_config srv in
  let params = Wirefault.scale Wirefault.default_params ~intensity in
  let lines = ref [] in
  let conns = ref 0 in
  let dial ~now =
    let c = !conns in
    incr conns;
    (* Refuse every seventh dial outright: connection backoff must be
       exercised even on seeds whose lines rarely die. *)
    if c mod 7 = 6 then None
    else begin
      let line idx = Wirefault.create ~params ~rng:(Rng.substream ~seed ~index:idx) () in
      let to_server = line (2 + (2 * c)) in
      let to_client = line (3 + (2 * c)) in
      lines := to_server :: to_client :: !lines;
      let client_end, server_end = Transport.pipe () in
      ignore
        (Wire_server.attach wsrv ~now (Transport.with_chaos ~line:to_client server_end));
      Some (Transport.with_chaos ~line:to_server client_end)
    end
  in
  let client =
    Client.create ?config:client_config ~rng:(Rng.substream ~seed ~index:1) ~dial
      ~updates:stream ()
  in
  let now = ref 0.0 in
  let steps = ref 0 in
  while (not (Client.finished client)) && !steps < max_steps do
    incr steps;
    now := float_of_int !steps *. dt;
    Client.step client ~now:!now;
    ignore (Wire_server.step wsrv ~now:!now);
    if !steps mod heartbeat_every = 0 then ignore (Wire_server.heartbeat wsrv ~now:!now)
  done;
  let cstats = Client.stats client in
  let wstats = Wire_server.stats wsrv in
  let fp_chaos = Server.fingerprint srv in
  let client_done = match Client.phase client with Client.Done -> true | _ -> false in
  let fingerprint_ok =
    String.equal fp_chaos fp_ref
    && (match Client.fingerprint client with
       | Some fp -> String.equal fp fp_ref
       | None -> false)
  in
  let exactly_once =
    wstats.Wire_server.applied = updates && Server.seq srv = updates
  in
  let lfi = Server.lfi_ok srv in
  let settled = Server.settled srv in
  Server.close srv;
  let chaos =
    List.fold_left
      (fun acc l -> Wirefault.add_counts acc (Wirefault.counts l))
      Wirefault.zero_counts !lines
  in
  {
    seed;
    intensity;
    updates;
    ok = client_done && fingerprint_ok && exactly_once && lfi && settled;
    client_done;
    fingerprint_ok;
    exactly_once;
    lfi;
    settled;
    reconnects = cstats.Client.reconnects;
    dial_failures = cstats.Client.dial_failures;
    retries = cstats.Client.retries;
    fast_forwarded = cstats.Client.fast_forwarded;
    duplicates = wstats.Wire_server.duplicates;
    malformed = wstats.Wire_server.malformed;
    reaped = wstats.Wire_server.reaped;
    chaos;
    reconnect_latencies = cstats.Client.reconnect_latencies;
    reconnect_slo = Recovery.slo cstats.Client.reconnect_latencies;
    wall_s = !now;
  }

(* Allowlisted for [domain-race]: the wall-clock the checker traces
   through Server.create only times restore duration (health
   telemetry). Everything the audit asserts — fingerprints, apply
   counts, LFI — flows from the per-cell seed substreams, so parallel
   cells stay bit-deterministic. *)
let run_grid ?jobs ?updates ~dir ~topo ~seeds ~intensities () =
  let cells =
    Array.of_list
      (List.concat_map
         (fun seed -> List.map (fun intensity -> (seed, intensity)) intensities)
         seeds)
  in
  Array.to_list
    (Pool.map_array ?jobs
       (fun (seed, intensity) ->
         let cell_dir =
           Filename.concat dir (Printf.sprintf "seed_%d_i%g" seed intensity)
         in
         run ?updates ~intensity ~dir:cell_dir ~topo ~seed ())
       cells)

let slo_by_intensity results =
  let intensities =
    List.sort_uniq Float.compare (List.map (fun r -> r.intensity) results)
  in
  List.map
    (fun i ->
      let samples =
        List.concat_map
          (fun r -> if Float.equal r.intensity i then r.reconnect_latencies else [])
          results
      in
      (i, Recovery.slo samples))
    intensities

let report results =
  Tab.render
    ~header:
      [
        "seed"; "intensity"; "ok"; "reconnects"; "dial fails"; "retries"; "dups";
        "malformed"; "reaped"; "flips"; "trunc"; "disc"; "reconnect p95 s"; "wall s";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.seed;
           Printf.sprintf "%g" r.intensity;
           (if r.ok then "yes" else "NO");
           string_of_int r.reconnects;
           string_of_int r.dial_failures;
           string_of_int r.retries;
           string_of_int r.duplicates;
           string_of_int r.malformed;
           string_of_int r.reaped;
           string_of_int r.chaos.Wirefault.flips;
           string_of_int r.chaos.Wirefault.truncations;
           string_of_int r.chaos.Wirefault.disconnects;
           Printf.sprintf "%.3f" r.reconnect_slo.Recovery.p95;
           Printf.sprintf "%.1f" r.wall_s;
         ])
       results)
