(** The wire protocol's message vocabulary, one message per frame.

    Hand-rolled fixed-layout binary like {!Mdr_server.Update} (which
    it embeds for [Submit]): a tag byte, then big-endian fields.
    Client tags live in [0x01 ..]; server tags in [0x41 ..] so a
    misdirected frame can never decode as the other side's message.

    Protocol v2 is multi-writer: every session is bound to a client id
    ([>= 1]; 0 is the server's trusted local path), acknowledgements
    name the client's own sequence space, and submissions carry the
    ownership epoch the client writes under (see {!Mdr_server.Server}).

    Decoding is exact-length and total: any payload that is not
    precisely one well-formed message raises {!Corrupt} — never any
    other exception, and never a silent partial parse. *)

exception Corrupt of string

type scope = All | Pairs of (int * int) list
(** What a [Claim] asks for: every duplex pair, or a specific list. *)

type client_msg =
  | Hello of { client : int; last_acked : int }
      (** open/resume a session as [client]; [last_acked] is the
          highest own-space seq this client has seen acknowledged *)
  | Claim of { scope : scope }
      (** request ownership of [scope] under a fresh epoch *)
  | Submit of { seq : int; epoch : int; update : Mdr_server.Update.t }
      (** the client's update number [seq] (per-client, contiguous),
          written under [epoch] (0 = never claimed) *)
  | Ping of { nonce : int }  (** keepalive; answered with [Pong] *)
  | Get_fingerprint
  | Bye  (** orderly close *)

type server_msg =
  | Welcome of { session : int; client : int; seq : int; epoch : int }
      (** reply to [Hello]: [client]'s durable high-water mark [seq]
          (resume from [seq + 1]) and its last granted [epoch] (0 =
          never claimed; a nonzero value makes re-claiming on resume
          unnecessary) *)
  | Granted of { epoch : int }  (** reply to [Claim] *)
  | Ack of { client : int; seq : int }
      (** [client]'s update [seq] is durable; re-sent verbatim for
          duplicates *)
  | Reject of { seq : int; reason : string }
      (** update [seq] is invalid or out of order; not applied.
          [seq = 0] rejects a non-Submit request (e.g. a bad Claim). *)
  | Fenced of { seq : int; held : int; current : int }
      (** update [seq] touched a pair owned under epoch [current],
          which the presented epoch [held] does not meet. The client is
          a zombie writer and must stop, not retry. *)
  | Throttled of { seq : int; retry_after : float }
      (** update [seq] was shed by the client's rate limiter; resend
          no sooner than [retry_after] seconds from now *)
  | Busy of { retry_after : float; reason : string }
      (** the server refused the session (table full, quarantine);
          redial no sooner than [retry_after] seconds from now *)
  | Shutdown  (** server-side orderly close (graceful shutdown) *)
  | Pong of { nonce : int }
  | Fingerprint of string  (** reply to [Get_fingerprint] *)

val encode_client : client_msg -> string
val decode_client : string -> client_msg
val encode_server : server_msg -> string
val decode_server : string -> server_msg

val describe_client : client_msg -> string
val describe_server : server_msg -> string
