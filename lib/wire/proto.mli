(** The wire protocol's message vocabulary, one message per frame.

    Hand-rolled fixed-layout binary like {!Mdr_server.Update} (which
    it embeds for [Submit]): a tag byte, then big-endian fields.
    Client tags live in [0x01 ..]; server tags in [0x41 ..] so a
    misdirected frame can never decode as the other side's message.

    Decoding is exact-length and total: any payload that is not
    precisely one well-formed message raises {!Corrupt} — never any
    other exception, and never a silent partial parse. *)

exception Corrupt of string

type client_msg =
  | Hello of { client : int; last_acked : int }
      (** open/resume a session; [last_acked] is the highest update
          seq this client has seen acknowledged *)
  | Submit of { seq : int; update : Mdr_server.Update.t }
  | Ping of { nonce : int }  (** keepalive; answered with [Pong] *)
  | Get_fingerprint
  | Bye  (** orderly close *)

type server_msg =
  | Welcome of { session : int; seq : int }
      (** reply to [Hello]: the server's last durable update seq — the
          client resumes from [seq + 1] (the PR-6 resume contract) *)
  | Ack of { seq : int }
      (** update [seq] is durable; re-sent verbatim for duplicates *)
  | Reject of { seq : int; reason : string }
      (** update [seq] is invalid or out of order; not applied *)
  | Pong of { nonce : int }
  | Fingerprint of string  (** reply to [Get_fingerprint] *)

val encode_client : client_msg -> string
val decode_client : string -> client_msg
val encode_server : server_msg -> string
val decode_server : string -> server_msg

val describe_client : client_msg -> string
val describe_server : server_msg -> string
