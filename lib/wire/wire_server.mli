(** The route-server's wire front end: sessions, per-client dedup,
    epoch fencing, admission control, liveness.

    One {!t} fronts one {!Mdr_server.Server.t}. Transports are handed
    in by whoever owns the accept loop ({!attach}); {!step} drains
    them, decodes frames and executes messages. A Hello binds each
    session to a client id, and everything after that is per-client:

    - dedup is a comparison against the client's own durable mark
      ({!Mdr_server.Server.client_seq}) — a retried or chaos-duplicated
      [Submit] re-acks without applying, exactly-once per client no
      matter how the streams interleave;
    - [Submit]s pass through the core's epoch fence: a stale-epoch
      write gets a typed [Fenced] reply and is never applied;
    - misbehavior (gap and fenced submits, malformed frames) accrues
      strikes; enough strikes quarantine the client — its sessions
      close and new Hellos get [Busy] until the quarantine lapses;
    - each client has a token bucket; an empty bucket sheds the
      [Submit] with [Throttled] (no strike — load is not misbehavior).

    The session table is bounded: when full, {!attach} first evicts the
    least-recently-active Greeting-stage session (a redial storm parks
    half-open sessions; they are the safe victims), and if every slot
    is Hello-bound it refuses the transport with [Busy]. A corrupt
    frame stream (sticky {!Frame} failure) closes the session; the
    client reconnects and resumes. {!heartbeat} extends the core
    watchdog with wire liveness: idle sessions are reaped, malformed
    traffic and quarantines are reported as alarms alongside the
    core's. *)

type config = {
  dead_after : float;  (** reap a session idle this long (seconds) *)
  max_sessions : int;  (** hard session-table cap *)
  rate : float;  (** per-client token refill, submits/second *)
  burst : float;  (** per-client bucket depth *)
  max_strikes : int;  (** strikes before a client is quarantined *)
  quarantine_for : float;  (** quarantine length (seconds) *)
  busy_retry : float;  (** retry-after advertised on [Busy] *)
  record_applies : bool;
      (** keep an in-order log of accepted entries ({!applied_log}) —
          the multi-writer audit's raw material; off in production *)
}

val default_config : config
(** 10 s dead-after (five client keepalive intervals), 64 sessions,
    100/s rate with burst 50, 5 strikes, 30 s quarantine, 5 s busy
    retry, no apply recording. *)

type stats = {
  opened : int;
  reaped : int;  (** closed by the watchdog for idleness *)
  closed : int;  (** closed by [Bye], peer close, corruption, quarantine *)
  evicted : int;  (** Greeting-stage sessions evicted by a full table *)
  busy_rejected : int;  (** transports/Hellos refused with [Busy] *)
  frames : int;  (** well-formed frames executed *)
  malformed : int;  (** corrupt frame streams (each closes a session) *)
  duplicates : int;  (** [Submit]s re-acked without applying *)
  rejects : int;
  fenced : int;  (** stale-epoch [Submit]s refused *)
  throttled : int;  (** [Submit]s shed by a client's token bucket *)
  quarantines : int;
  claims : int;  (** ownership grants *)
  applied : int;  (** [Submit]s journaled and applied *)
}

type t

val create : ?config:config -> Mdr_server.Server.t -> t
val core : t -> Mdr_server.Server.t

val attach : t -> now:float -> Transport.t -> int option
(** Adopt a connected transport as a new session (sends the
    {!Frame.greeting}); returns the session id, or [None] if the table
    is full of bound sessions — the transport then got a [Busy] reply
    and was closed. *)

val step : t -> now:float -> int
(** Drain every session's transport and execute complete frames;
    returns how many frames were executed. Cheap when idle. A no-op
    once the core is dead (a simulated torn append mid-drain). *)

val sessions : t -> int
(** Sessions currently open. *)

val stats : t -> stats

val shed_of : t -> client:int -> int
(** Submits shed by [client]'s token bucket so far. *)

val applied_log : t -> Mdr_server.Update.entry list
(** The accepted entries (applies and claims), oldest first — exactly
    the order the core journaled them. Empty unless [record_applies]
    is set. The multi-writer audit harvests this before discarding a
    killed server to build its sequential reference. *)

val shutdown : t -> now:float -> int
(** Graceful shutdown of the wire layer: send [Shutdown] to every live
    session, close them all, and return how many there were. The core
    server is untouched (checkpoint/close it separately). *)

val metrics : t -> now:float -> string
(** Prometheus text exposition of the wire and core counters —
    sessions, applies, sheds, torn tails, quarantines and friends. *)

type alarm =
  | Core of Mdr_server.Server.alarm
  | Dead_session of { id : int; idle : float }
  | Malformed_frames of { frames : int }
      (** corrupt streams seen since the last heartbeat *)
  | Quarantined of { client : int; strikes : int }
      (** a client crossed the strike threshold since the last
          heartbeat; its sessions were closed *)

val heartbeat : t -> now:float -> alarm list
(** The wire watchdog tick: reap dead sessions, report new malformed
    traffic and quarantines, and relay the core server's own heartbeat
    alarms. *)
