(** The route-server's wire front end: sessions, dedup, liveness.

    One {!t} fronts one {!Mdr_server.Server.t}. Transports are handed
    in by whoever owns the accept loop ({!attach}); {!step} drains
    them, decodes frames and executes messages. The server side is
    deliberately almost stateless per session — the dedup that makes
    retries safe is a single comparison against the core's durable
    sequence number:

    - [Submit seq <= Server.seq] — already durable (a retry or a
      chaos-duplicated frame): re-ack without applying, so applies are
      exactly-once no matter how many times the frame arrives;
    - [seq = Server.seq + 1] — journal + apply, then ack;
    - anything else is a gap the client must resolve by re-Hello-ing —
      rejected, never applied out of order.

    A corrupt frame stream (sticky {!Frame} failure) closes the
    session; the client reconnects and resumes. {!heartbeat} extends
    the core watchdog with wire liveness: sessions idle past
    [dead_after] are reaped, and malformed-frame counts are reported
    as alarms alongside the core's. *)

type config = {
  dead_after : float;  (** reap a session idle this long (seconds) *)
}

val default_config : config
(** 10 s — five client keepalive intervals. *)

type stats = {
  opened : int;
  reaped : int;  (** closed by the watchdog for idleness *)
  closed : int;  (** closed by [Bye], peer close, or corruption *)
  frames : int;  (** well-formed frames executed *)
  malformed : int;  (** corrupt frame streams (each closes a session) *)
  duplicates : int;  (** [Submit]s re-acked without applying *)
  rejects : int;
  applied : int;  (** [Submit]s journaled and applied *)
}

type t

val create : ?config:config -> Mdr_server.Server.t -> t
val core : t -> Mdr_server.Server.t

val attach : t -> now:float -> Transport.t -> int
(** Adopt a connected transport as a new session (sends the
    {!Frame.greeting}); returns the session id. *)

val step : t -> now:float -> int
(** Drain every session's transport and execute complete frames;
    returns how many frames were executed. Cheap when idle. *)

val sessions : t -> int
(** Sessions currently open. *)

val stats : t -> stats

type alarm =
  | Core of Mdr_server.Server.alarm
  | Dead_session of { id : int; idle : float }
  | Malformed_frames of { frames : int }
      (** corrupt streams seen since the last heartbeat *)

val heartbeat : t -> now:float -> alarm list
(** The wire watchdog tick: reap dead sessions, report new malformed
    traffic, and relay the core server's own heartbeat alarms. *)
