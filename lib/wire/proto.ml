module Update = Mdr_server.Update

exception Corrupt of string

type client_msg =
  | Hello of { client : int; last_acked : int }
  | Submit of { seq : int; update : Update.t }
  | Ping of { nonce : int }
  | Get_fingerprint
  | Bye

type server_msg =
  | Welcome of { session : int; seq : int }
  | Ack of { seq : int }
  | Reject of { seq : int; reason : string }
  | Pong of { nonce : int }
  | Fingerprint of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let check_u31 what v =
  if v < 0 || v > 0x3FFFFFFF then invalid_arg (Printf.sprintf "Proto: %s out of range" what)

let check_str what s =
  if String.length s > 0xFFFF then invalid_arg (Printf.sprintf "Proto: %s too long" what)

let with_buf n f =
  let b = Buffer.create n in
  f b;
  Buffer.contents b

let add_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_be b (Int64.of_int v)

let add_str b s =
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let encode_client = function
  | Hello { client; last_acked } ->
      check_u31 "Hello.client" client;
      if last_acked < 0 then invalid_arg "Proto: Hello.last_acked out of range";
      with_buf 13 (fun b ->
          Buffer.add_char b '\x01';
          add_u32 b client;
          add_u64 b last_acked)
  | Submit { seq; update } ->
      if seq < 1 then invalid_arg "Proto: Submit.seq out of range";
      with_buf 26 (fun b ->
          Buffer.add_char b '\x02';
          add_u64 b seq;
          Buffer.add_string b (Update.encode update))
  | Ping { nonce } ->
      check_u31 "Ping.nonce" nonce;
      with_buf 5 (fun b ->
          Buffer.add_char b '\x03';
          add_u32 b nonce)
  | Get_fingerprint -> "\x04"
  | Bye -> "\x05"

let encode_server = function
  | Welcome { session; seq } ->
      check_u31 "Welcome.session" session;
      if seq < 0 then invalid_arg "Proto: Welcome.seq out of range";
      with_buf 13 (fun b ->
          Buffer.add_char b '\x41';
          add_u32 b session;
          add_u64 b seq)
  | Ack { seq } ->
      if seq < 1 then invalid_arg "Proto: Ack.seq out of range";
      with_buf 9 (fun b ->
          Buffer.add_char b '\x42';
          add_u64 b seq)
  | Reject { seq; reason } ->
      if seq < 1 then invalid_arg "Proto: Reject.seq out of range";
      check_str "Reject.reason" reason;
      with_buf (11 + String.length reason) (fun b ->
          Buffer.add_char b '\x43';
          add_u64 b seq;
          add_str b reason)
  | Pong { nonce } ->
      check_u31 "Pong.nonce" nonce;
      with_buf 5 (fun b ->
          Buffer.add_char b '\x44';
          add_u32 b nonce)
  | Fingerprint fp ->
      check_str "Fingerprint" fp;
      with_buf (3 + String.length fp) (fun b ->
          Buffer.add_char b '\x45';
          add_str b fp)

(* Exact-length decoding: the frame layer hands us whole payloads, so
   any length disagreement is corruption, including trailing bytes. *)

let get_u32 s off = Int32.to_int (String.get_int32_be s off)

let get_u64 what s off =
  let v = Int64.to_int (String.get_int64_be s off) in
  if v < 0 then corrupt "%s is negative" what;
  v

let exactly what s n =
  if String.length s <> n then
    corrupt "%s payload is %d bytes (expected %d)" what (String.length s) n

let get_str what s off =
  if String.length s < off + 2 then corrupt "%s: short string header" what;
  let n = String.get_uint16_be s off in
  if String.length s <> off + 2 + n then
    corrupt "%s: string length %d does not match payload" what n;
  String.sub s (off + 2) n

let decode_client s =
  if String.length s = 0 then corrupt "empty message";
  match s.[0] with
  | '\x01' ->
      exactly "Hello" s 13;
      Hello { client = get_u32 s 1; last_acked = get_u64 "Hello.last_acked" s 5 }
  | '\x02' ->
      if String.length s < 10 then corrupt "Submit: short payload";
      let update =
        try Update.decode (String.sub s 9 (String.length s - 9))
        with Update.Corrupt reason -> corrupt "Submit: %s" reason
      in
      Submit { seq = get_u64 "Submit.seq" s 1; update }
  | '\x03' ->
      exactly "Ping" s 5;
      Ping { nonce = get_u32 s 1 }
  | '\x04' ->
      exactly "Get_fingerprint" s 1;
      Get_fingerprint
  | '\x05' ->
      exactly "Bye" s 1;
      Bye
  | c -> corrupt "unknown client tag 0x%02x" (Char.code c)

let decode_server s =
  if String.length s = 0 then corrupt "empty message";
  match s.[0] with
  | '\x41' ->
      exactly "Welcome" s 13;
      Welcome { session = get_u32 s 1; seq = get_u64 "Welcome.seq" s 5 }
  | '\x42' ->
      exactly "Ack" s 9;
      Ack { seq = get_u64 "Ack.seq" s 1 }
  | '\x43' ->
      if String.length s < 11 then corrupt "Reject: short payload";
      Reject { seq = get_u64 "Reject.seq" s 1; reason = get_str "Reject" s 9 }
  | '\x44' ->
      exactly "Pong" s 5;
      Pong { nonce = get_u32 s 1 }
  | '\x45' -> Fingerprint (get_str "Fingerprint" s 1)
  | c -> corrupt "unknown server tag 0x%02x" (Char.code c)

let describe_client = function
  | Hello { client; last_acked } -> Printf.sprintf "hello client=%d last_acked=%d" client last_acked
  | Submit { seq; _ } -> Printf.sprintf "submit seq=%d" seq
  | Ping { nonce } -> Printf.sprintf "ping %d" nonce
  | Get_fingerprint -> "get-fingerprint"
  | Bye -> "bye"

let describe_server = function
  | Welcome { session; seq } -> Printf.sprintf "welcome session=%d seq=%d" session seq
  | Ack { seq } -> Printf.sprintf "ack seq=%d" seq
  | Reject { seq; reason } -> Printf.sprintf "reject seq=%d (%s)" seq reason
  | Pong { nonce } -> Printf.sprintf "pong %d" nonce
  | Fingerprint fp -> Printf.sprintf "fingerprint %s" fp
