module Update = Mdr_server.Update

exception Corrupt of string

type scope = All | Pairs of (int * int) list

type client_msg =
  | Hello of { client : int; last_acked : int }
  | Claim of { scope : scope }
  | Submit of { seq : int; epoch : int; update : Update.t }
  | Ping of { nonce : int }
  | Get_fingerprint
  | Bye

type server_msg =
  | Welcome of { session : int; client : int; seq : int; epoch : int }
  | Granted of { epoch : int }
  | Ack of { client : int; seq : int }
  | Reject of { seq : int; reason : string }
  | Fenced of { seq : int; held : int; current : int }
  | Throttled of { seq : int; retry_after : float }
  | Busy of { retry_after : float; reason : string }
  | Shutdown
  | Pong of { nonce : int }
  | Fingerprint of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let check_u31 what v =
  if v < 0 || v > 0x3FFFFFFF then invalid_arg (Printf.sprintf "Proto: %s out of range" what)

let check_str what s =
  if String.length s > 0xFFFF then invalid_arg (Printf.sprintf "Proto: %s too long" what)

let check_delay what v =
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg (Printf.sprintf "Proto: %s must be finite and >= 0" what)

let with_buf n f =
  let b = Buffer.create n in
  f b;
  Buffer.contents b

let add_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_be b (Int64.of_int v)
let add_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let add_str b s =
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let encode_client = function
  | Hello { client; last_acked } ->
      check_u31 "Hello.client" client;
      if client < 1 then invalid_arg "Proto: Hello.client ids start at 1";
      if last_acked < 0 then invalid_arg "Proto: Hello.last_acked out of range";
      with_buf 13 (fun b ->
          Buffer.add_char b '\x01';
          add_u32 b client;
          add_u64 b last_acked)
  | Claim { scope } ->
      with_buf 16 (fun b ->
          Buffer.add_char b '\x06';
          match scope with
          | All -> Buffer.add_char b '\x00'
          | Pairs l ->
              let n = List.length l in
              if n = 0 then invalid_arg "Proto: Claim with empty pair list";
              if n > 0xFFFF then invalid_arg "Proto: Claim pair list too long";
              Buffer.add_char b '\x01';
              Buffer.add_uint16_be b n;
              List.iter
                (fun (x, y) ->
                  check_u31 "Claim.pair" x;
                  check_u31 "Claim.pair" y;
                  add_u32 b x;
                  add_u32 b y)
                l)
  | Submit { seq; epoch; update } ->
      if seq < 1 then invalid_arg "Proto: Submit.seq out of range";
      check_u31 "Submit.epoch" epoch;
      with_buf 30 (fun b ->
          Buffer.add_char b '\x02';
          add_u64 b seq;
          add_u32 b epoch;
          Buffer.add_string b (Update.encode update))
  | Ping { nonce } ->
      check_u31 "Ping.nonce" nonce;
      with_buf 5 (fun b ->
          Buffer.add_char b '\x03';
          add_u32 b nonce)
  | Get_fingerprint -> "\x04"
  | Bye -> "\x05"

let encode_server = function
  | Welcome { session; client; seq; epoch } ->
      check_u31 "Welcome.session" session;
      check_u31 "Welcome.client" client;
      check_u31 "Welcome.epoch" epoch;
      if seq < 0 then invalid_arg "Proto: Welcome.seq out of range";
      with_buf 21 (fun b ->
          Buffer.add_char b '\x41';
          add_u32 b session;
          add_u32 b client;
          add_u64 b seq;
          add_u32 b epoch)
  | Granted { epoch } ->
      check_u31 "Granted.epoch" epoch;
      with_buf 5 (fun b ->
          Buffer.add_char b '\x46';
          add_u32 b epoch)
  | Ack { client; seq } ->
      check_u31 "Ack.client" client;
      if seq < 1 then invalid_arg "Proto: Ack.seq out of range";
      with_buf 13 (fun b ->
          Buffer.add_char b '\x42';
          add_u32 b client;
          add_u64 b seq)
  | Reject { seq; reason } ->
      if seq < 0 then invalid_arg "Proto: Reject.seq out of range";
      check_str "Reject.reason" reason;
      with_buf (11 + String.length reason) (fun b ->
          Buffer.add_char b '\x43';
          add_u64 b seq;
          add_str b reason)
  | Fenced { seq; held; current } ->
      if seq < 1 then invalid_arg "Proto: Fenced.seq out of range";
      check_u31 "Fenced.held" held;
      check_u31 "Fenced.current" current;
      with_buf 17 (fun b ->
          Buffer.add_char b '\x47';
          add_u64 b seq;
          add_u32 b held;
          add_u32 b current)
  | Throttled { seq; retry_after } ->
      if seq < 1 then invalid_arg "Proto: Throttled.seq out of range";
      check_delay "Throttled.retry_after" retry_after;
      with_buf 17 (fun b ->
          Buffer.add_char b '\x48';
          add_u64 b seq;
          add_f64 b retry_after)
  | Busy { retry_after; reason } ->
      check_delay "Busy.retry_after" retry_after;
      check_str "Busy.reason" reason;
      with_buf (11 + String.length reason) (fun b ->
          Buffer.add_char b '\x49';
          add_f64 b retry_after;
          add_str b reason)
  | Shutdown -> "\x4A"
  | Pong { nonce } ->
      check_u31 "Pong.nonce" nonce;
      with_buf 5 (fun b ->
          Buffer.add_char b '\x44';
          add_u32 b nonce)
  | Fingerprint fp ->
      check_str "Fingerprint" fp;
      with_buf (3 + String.length fp) (fun b ->
          Buffer.add_char b '\x45';
          add_str b fp)

(* Exact-length decoding: the frame layer hands us whole payloads, so
   any length disagreement is corruption, including trailing bytes. *)

let get_u32 s off = Int32.to_int (String.get_int32_be s off)

let get_u64 what s off =
  let v = Int64.to_int (String.get_int64_be s off) in
  if v < 0 then corrupt "%s is negative" what;
  v

let get_f64 what s off =
  let v = Int64.float_of_bits (String.get_int64_be s off) in
  if not (Float.is_finite v) || v < 0.0 then corrupt "%s is not a delay" what;
  v

let exactly what s n =
  if String.length s <> n then
    corrupt "%s payload is %d bytes (expected %d)" what (String.length s) n

let get_str what s off =
  if String.length s < off + 2 then corrupt "%s: short string header" what;
  let n = String.get_uint16_be s off in
  if String.length s <> off + 2 + n then
    corrupt "%s: string length %d does not match payload" what n;
  String.sub s (off + 2) n

let decode_client s =
  if String.length s = 0 then corrupt "empty message";
  match s.[0] with
  | '\x01' ->
      exactly "Hello" s 13;
      let client = get_u32 s 1 in
      if client < 1 then corrupt "Hello.client %d is reserved" client;
      Hello { client; last_acked = get_u64 "Hello.last_acked" s 5 }
  | '\x06' -> (
      if String.length s < 2 then corrupt "Claim: short payload";
      match s.[1] with
      | '\x00' ->
          exactly "Claim" s 2;
          Claim { scope = All }
      | '\x01' ->
          if String.length s < 4 then corrupt "Claim: short pair count";
          let n = String.get_uint16_be s 2 in
          if n = 0 then corrupt "Claim: empty pair list";
          exactly "Claim" s (4 + (8 * n));
          let pairs =
            List.init n (fun i -> (get_u32 s (4 + (8 * i)), get_u32 s (8 + (8 * i))))
          in
          Claim { scope = Pairs pairs }
      | c -> corrupt "Claim: unknown scope kind 0x%02x" (Char.code c))
  | '\x02' ->
      if String.length s < 14 then corrupt "Submit: short payload";
      let update =
        try Update.decode (String.sub s 13 (String.length s - 13))
        with Update.Corrupt reason -> corrupt "Submit: %s" reason
      in
      let epoch = get_u32 s 9 in
      if epoch < 0 then corrupt "Submit.epoch is negative";
      Submit { seq = get_u64 "Submit.seq" s 1; epoch; update }
  | '\x03' ->
      exactly "Ping" s 5;
      Ping { nonce = get_u32 s 1 }
  | '\x04' ->
      exactly "Get_fingerprint" s 1;
      Get_fingerprint
  | '\x05' ->
      exactly "Bye" s 1;
      Bye
  | c -> corrupt "unknown client tag 0x%02x" (Char.code c)

let decode_server s =
  if String.length s = 0 then corrupt "empty message";
  match s.[0] with
  | '\x41' ->
      exactly "Welcome" s 21;
      let epoch = get_u32 s 17 in
      if epoch < 0 then corrupt "Welcome.epoch is negative";
      Welcome
        {
          session = get_u32 s 1;
          client = get_u32 s 5;
          seq = get_u64 "Welcome.seq" s 9;
          epoch;
        }
  | '\x46' ->
      exactly "Granted" s 5;
      let epoch = get_u32 s 1 in
      if epoch < 1 then corrupt "Granted.epoch %d out of range" epoch;
      Granted { epoch }
  | '\x42' ->
      exactly "Ack" s 13;
      Ack { client = get_u32 s 1; seq = get_u64 "Ack.seq" s 5 }
  | '\x43' ->
      if String.length s < 11 then corrupt "Reject: short payload";
      Reject { seq = get_u64 "Reject.seq" s 1; reason = get_str "Reject" s 9 }
  | '\x47' ->
      exactly "Fenced" s 17;
      let held = get_u32 s 9 and current = get_u32 s 13 in
      if held < 0 || current < 0 then corrupt "Fenced: negative epoch";
      Fenced { seq = get_u64 "Fenced.seq" s 1; held; current }
  | '\x48' ->
      exactly "Throttled" s 17;
      Throttled
        {
          seq = get_u64 "Throttled.seq" s 1;
          retry_after = get_f64 "Throttled.retry_after" s 9;
        }
  | '\x49' ->
      if String.length s < 11 then corrupt "Busy: short payload";
      Busy
        { retry_after = get_f64 "Busy.retry_after" s 1; reason = get_str "Busy" s 9 }
  | '\x4A' ->
      exactly "Shutdown" s 1;
      Shutdown
  | '\x44' ->
      exactly "Pong" s 5;
      Pong { nonce = get_u32 s 1 }
  | '\x45' -> Fingerprint (get_str "Fingerprint" s 1)
  | c -> corrupt "unknown server tag 0x%02x" (Char.code c)

let describe_client = function
  | Hello { client; last_acked } ->
      Printf.sprintf "hello client=%d last_acked=%d" client last_acked
  | Claim { scope = All } -> "claim all"
  | Claim { scope = Pairs l } -> Printf.sprintf "claim %d pairs" (List.length l)
  | Submit { seq; epoch; _ } -> Printf.sprintf "submit seq=%d epoch=%d" seq epoch
  | Ping { nonce } -> Printf.sprintf "ping %d" nonce
  | Get_fingerprint -> "get-fingerprint"
  | Bye -> "bye"

let describe_server = function
  | Welcome { session; client; seq; epoch } ->
      Printf.sprintf "welcome session=%d client=%d seq=%d epoch=%d" session client
        seq epoch
  | Granted { epoch } -> Printf.sprintf "granted epoch=%d" epoch
  | Ack { client; seq } -> Printf.sprintf "ack client=%d seq=%d" client seq
  | Reject { seq; reason } -> Printf.sprintf "reject seq=%d (%s)" seq reason
  | Fenced { seq; held; current } ->
      Printf.sprintf "fenced seq=%d held=%d current=%d" seq held current
  | Throttled { seq; retry_after } ->
      Printf.sprintf "throttled seq=%d retry_after=%.3f" seq retry_after
  | Busy { retry_after; reason } ->
      Printf.sprintf "busy retry_after=%.3f (%s)" retry_after reason
  | Shutdown -> "shutdown"
  | Pong { nonce } -> Printf.sprintf "pong %d" nonce
  | Fingerprint fp -> Printf.sprintf "fingerprint %s" fp
