(** The resumable client: push an update stream through a hostile
    transport until every update is durably acknowledged.

    The client is a polled state machine ({!step}) with no internal
    clock or I/O of its own: the caller supplies [~now] and a [dial]
    function, so the same machine runs against in-memory chaos pipes
    on a logical clock (the audit) and real sockets on the wall clock
    (the CLI).

    {2 Protocol discipline}

    At most one request is in flight. Each gets [request_timeout] to
    produce its reply; a timeout re-sends (up to [max_retries] per
    request), and exhausting retries — or a corrupt reply stream, or
    the transport closing — drops the connection. Redials back off
    exponentially from [backoff_base] to [backoff_max] with SplitMix64
    jitter, and give up for good after [max_reconnects] consecutive
    failures.

    On every (re)connection the client sends [Hello] and the server's
    [Welcome { seq; epoch }] names the client's own durable high-water
    mark and last granted ownership epoch: the client resumes from
    [seq + 1], skipping updates that were journaled before the cut,
    and keeps writing under its epoch without re-claiming. Together
    with the server's per-client duplicate re-ack this makes applies
    exactly-once across any disconnect pattern — which the audit
    proves by fingerprint.

    A client created with [?claim] sends [Claim] before its first
    submit (unless a Welcome already reported a granted epoch) and
    then stamps every [Submit] with the epoch. A [Fenced] reply is
    terminal: a newer writer owns our links, so the machine fails
    rather than redialing — exactly the zombie behavior fencing
    exists to stop. [Throttled] delays the pending submit by the
    advertised [retry_after]; [Busy] and [Shutdown] drop the
    connection (honoring [retry_after] before the next dial).

    When idle longer than [keepalive] the client pings, so the
    server's dead-session reaper only fires on genuinely dead
    peers. *)

type config = {
  request_timeout : float;
  max_retries : int;  (** re-sends of one request before redialing *)
  backoff_base : float;
  backoff_max : float;
  max_reconnects : int;  (** consecutive failed dials before giving up *)
  keepalive : float;  (** ping after this much idle time *)
}

val default_config : config
(** 0.25 s timeout, 4 retries, 0.1 → 2 s backoff, 40 reconnects,
    2 s keepalive. *)

type phase =
  | Dialing
  | Greeting  (** connected, waiting for [Welcome] *)
  | Claiming  (** waiting for [Granted] *)
  | Streaming  (** submitting updates *)
  | Fingerprinting  (** all acked, fetching the server fingerprint *)
  | Done
  | Failed of string

type stats = {
  sent : int;  (** first-time [Submit] sends *)
  retries : int;  (** timeout re-sends (any request kind) *)
  acked : int;  (** updates durably acknowledged *)
  claims : int;  (** ownership grants received *)
  throttled : int;  (** submits delayed by a [Throttled] reply *)
  reconnects : int;  (** successful dials after the first *)
  dial_failures : int;
  fast_forwarded : int;
      (** updates skipped because a [Welcome] proved them durable *)
  corrupt_streams : int;  (** connections dropped on reply corruption *)
  reconnect_latencies : float list;
      (** seconds from each connection loss to the next [Welcome],
          newest first — the recovery samples behind the SLO table *)
}

type t

val create :
  ?config:config ->
  ?client_id:int ->
  ?claim:Proto.scope ->
  rng:Mdr_util.Rng.t ->
  dial:(now:float -> Transport.t option) ->
  updates:Mdr_server.Update.t array ->
  unit ->
  t
(** [rng] drives only backoff jitter. [dial] returns a fresh
    connected transport or [None] (connection refused — retried with
    backoff). Update [i] of [updates] is submitted as the client's own
    seq [i + 1]. [client_id] must be [>= 1] (default 1). [claim] makes
    the client take ownership of the scope before writing. *)

val step : t -> now:float -> unit
(** Advance the machine: dial when due, pump received bytes, time out
    and re-send, submit the next update. Call repeatedly with
    non-decreasing [now]. *)

val phase : t -> phase

val finished : t -> bool
(** [Done] or [Failed]. *)

val stats : t -> stats

val fingerprint : t -> string option
(** The server fingerprint fetched after the last ack. *)

val epoch : t -> int
(** The ownership epoch the client currently writes under; 0 before
    any grant. *)

val pending_seq : t -> int option
(** Seq of the in-flight [Submit], if the outstanding request is one
    (test hook for kill-at-frame-boundary coverage). *)
