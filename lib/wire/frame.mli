(** Length-prefixed framing over a byte-stream transport.

    The stream starts with an 8-byte greeting ({!Codec.header}: magic
    ["MDRW"], version) and then carries {!Codec.frame} records:
    [len:u32be crc:u32be payload] — the exact on-disk journal framing,
    reused on the wire so one codec is hardened once.

    {!decoder} is incremental and hostile-input safe: chunk boundaries
    are arbitrary, declared lengths are capped at {!max_payload}
    before any buffering decision, and the first corruption (bad
    magic, implausible length, CRC mismatch) is {e sticky} — after a
    mid-stream flip there is no way to know where the next frame
    starts, so the only safe reaction is to drop the connection. *)

val magic : string
val version : int
val max_payload : int
(** 64 KiB — far above any protocol message, far below harm. *)

val greeting : string
(** First bytes each side sends on a fresh connection. *)

val encode : string -> string
(** Frame one payload. @raise Invalid_argument if the payload is
    empty or exceeds {!max_payload}. *)

type decoder

val decoder : unit -> decoder
val feed : decoder -> string -> unit
(** Append received bytes. Input after a corruption is discarded. *)

val next : decoder -> [ `Frame of string | `Need_more | `Corrupt of string ]
(** Decode the next complete frame. [`Corrupt] is sticky. *)

val buffered : decoder -> int
(** Undecoded bytes held (diagnostics). *)
