module Rng = Mdr_util.Rng
module Update = Mdr_server.Update

type config = {
  request_timeout : float;
  max_retries : int;
  backoff_base : float;
  backoff_max : float;
  max_reconnects : int;
  keepalive : float;
}

let default_config =
  {
    request_timeout = 0.25;
    max_retries = 4;
    backoff_base = 0.1;
    backoff_max = 2.0;
    max_reconnects = 40;
    keepalive = 2.0;
  }

let validate_config c =
  let pos what v =
    if not (Float.is_finite v) || v <= 0.0 then
      invalid_arg (Printf.sprintf "Client: %s must be finite and positive" what)
  in
  pos "request_timeout" c.request_timeout;
  pos "backoff_base" c.backoff_base;
  pos "backoff_max" c.backoff_max;
  pos "keepalive" c.keepalive;
  if c.max_retries < 0 then invalid_arg "Client: max_retries must be >= 0";
  if c.max_reconnects < 1 then invalid_arg "Client: max_reconnects must be >= 1"

type phase =
  | Dialing
  | Greeting
  | Claiming
  | Streaming
  | Fingerprinting
  | Done
  | Failed of string

type stats = {
  sent : int;
  retries : int;
  acked : int;
  claims : int;
  throttled : int;
  reconnects : int;
  dial_failures : int;
  fast_forwarded : int;
  corrupt_streams : int;
  reconnect_latencies : float list;
}

let zero_stats =
  {
    sent = 0;
    retries = 0;
    acked = 0;
    claims = 0;
    throttled = 0;
    reconnects = 0;
    dial_failures = 0;
    fast_forwarded = 0;
    corrupt_streams = 0;
    reconnect_latencies = [];
  }

(* The one request allowed in flight, with its retry budget. *)
type pending = { msg : Proto.client_msg; mutable sent_at : float; mutable tries : int }

type t = {
  config : config;
  rng : Rng.t;
  dial : now:float -> Transport.t option;
  updates : Update.t array;
  client_id : int;
  claim : Proto.scope option;
  mutable epoch : int;  (* last granted ownership epoch; 0 = none *)
  mutable transport : Transport.t option;
  mutable dec : Frame.decoder;
  mutable phase : phase;
  mutable acked_seq : int;  (* highest seq the server has acknowledged *)
  mutable pending : pending option;
  mutable attempts : int;  (* consecutive dial/connection failures *)
  mutable next_dial : float;  (* no dial before this time *)
  mutable lost_at : float option;  (* when connectivity was last lost *)
  mutable last_send : float;
  mutable connections : int;
  mutable fingerprint : string option;
  mutable stats : stats;
}

let create ?(config = default_config) ?(client_id = 1) ?claim ~rng ~dial ~updates () =
  validate_config config;
  if client_id < 1 then invalid_arg "Client: client ids start at 1";
  {
    config;
    rng;
    dial;
    updates;
    client_id;
    claim;
    epoch = 0;
    transport = None;
    dec = Frame.decoder ();
    phase = Dialing;
    acked_seq = 0;
    pending = None;
    attempts = 0;
    next_dial = neg_infinity;
    lost_at = None;
    last_send = neg_infinity;
    connections = 0;
    fingerprint = None;
    stats = zero_stats;
  }

let phase t = t.phase
let stats t = t.stats
let fingerprint t = t.fingerprint
let epoch t = t.epoch

let finished t = match t.phase with Done | Failed _ -> true | _ -> false

let pending_seq t =
  match t.pending with
  | Some { msg = Proto.Submit { seq; _ }; _ } -> Some seq
  | _ -> None

(* Exponential backoff with multiplicative SplitMix64 jitter in
   [0.5, 1.5): retries from many clients decorrelate instead of
   thundering back in lockstep. *)
let backoff t =
  let exp2 = Float.min 30.0 (float_of_int (max 0 (t.attempts - 1))) in
  let base = Float.min t.config.backoff_max (t.config.backoff_base *. Float.pow 2.0 exp2) in
  base *. (0.5 +. Rng.float t.rng)

let total_updates t = Array.length t.updates

let send_msg t ~now msg =
  match t.transport with
  | None -> ()
  | Some tr ->
      Transport.send tr ~now (Frame.encode (Proto.encode_client msg));
      t.last_send <- now

let send_request t ~now msg =
  t.pending <- Some { msg; sent_at = now; tries = 1 };
  send_msg t ~now msg

(* Drop the current connection and schedule a redial (or give up). *)
let disconnect t ~now ~reason =
  (match t.transport with Some tr -> tr.Transport.close () | None -> ());
  t.transport <- None;
  t.pending <- None;
  if Option.is_none t.lost_at then t.lost_at <- Some now;
  t.attempts <- t.attempts + 1;
  if t.attempts > t.config.max_reconnects then
    t.phase <- Failed (Printf.sprintf "gave up after %d attempts (%s)" t.attempts reason)
  else begin
    t.next_dial <- now +. backoff t;
    t.phase <- Dialing
  end

(* What to ask for next once the line is established and idle. *)
let advance t ~now =
  if Option.is_none t.pending then
    match t.claim with
    | Some scope when t.epoch = 0 ->
        (* Claim before writing. A resumed client skips this: the
           Welcome already reported its durable epoch. *)
        t.phase <- Claiming;
        send_request t ~now (Proto.Claim { scope })
    | _ ->
    if t.acked_seq < total_updates t then begin
      let seq = t.acked_seq + 1 in
      t.stats <- { t.stats with sent = t.stats.sent + 1 };
      t.phase <- Streaming;
      send_request t ~now
        (Proto.Submit { seq; epoch = t.epoch; update = t.updates.(seq - 1) })
    end
    else if Option.is_none t.fingerprint then begin
      t.phase <- Fingerprinting;
      send_request t ~now Proto.Get_fingerprint
    end
    else begin
      send_msg t ~now Proto.Bye;
      (match t.transport with Some tr -> tr.Transport.close () | None -> ());
      t.transport <- None;
      t.phase <- Done
    end

let on_msg t ~now msg =
  match msg with
  | Proto.Welcome { session = _; client; seq; epoch } ->
      if client <> t.client_id then
        disconnect t ~now
          ~reason:(Printf.sprintf "welcome for client %d (we are %d)" client t.client_id)
      else begin
      (* The resume contract: [seq] is our durable mark, so everything
         up to it must never be re-sent; [epoch] is our last granted
         epoch, so a resumed writer keeps fencing rights without
         re-claiming. A Welcome during a steady connection (we only
         Hello when connecting) is impossible; treat any Welcome as
         authoritative. *)
      if epoch > t.epoch then t.epoch <- epoch;
      t.attempts <- 0;
      (match t.lost_at with
      | Some lost ->
          t.stats <-
            {
              t.stats with
              reconnect_latencies = (now -. lost) :: t.stats.reconnect_latencies;
            };
          t.lost_at <- None
      | None -> ());
      if seq > t.acked_seq then begin
        t.stats <-
          {
            t.stats with
            fast_forwarded = t.stats.fast_forwarded + (seq - t.acked_seq);
            acked = Stdlib.min (total_updates t) seq;
          };
        t.acked_seq <- seq
      end;
      t.pending <- None;
      advance t ~now
      end
  | Proto.Granted { epoch } ->
      (* A duplicated Claim frame can produce a second Granted while a
         Submit is already in flight: adopt the epoch, but only a
         pending Claim is answered by it. *)
      if epoch > t.epoch then t.epoch <- epoch;
      (match t.pending with
      | Some { msg = Proto.Claim _; _ } ->
          t.stats <- { t.stats with claims = t.stats.claims + 1 };
          t.pending <- None;
          advance t ~now
      | _ -> ())
  | Proto.Ack { client; seq } ->
      if client <> t.client_id then
        disconnect t ~now ~reason:(Printf.sprintf "ack for client %d" client)
      else if seq = t.acked_seq + 1 then begin
        t.acked_seq <- seq;
        t.stats <- { t.stats with acked = t.stats.acked + 1 };
        t.pending <- None;
        advance t ~now
      end
      (* an ack at or below acked_seq is a duplicate from a retried or
         chaos-duplicated submit — nothing to do *)
  | Proto.Reject { seq; reason } ->
      (* The server refused the update itself (validation) or our
         stream is out of step. Neither resolves by retrying the same
         bytes; re-Hello to re-learn the durable seq. *)
      disconnect t ~now ~reason:(Printf.sprintf "seq %d rejected: %s" seq reason)
  | Proto.Fenced { seq; held; current } ->
      (* We are the zombie: someone claimed our links under a newer
         epoch while we were away. Retrying cannot help and resuming
         would clobber the new writer — stop for good. *)
      (match t.transport with Some tr -> tr.Transport.close () | None -> ());
      t.transport <- None;
      t.pending <- None;
      t.phase <-
        Failed
          (Printf.sprintf "fenced: seq %d under epoch %d, current epoch is %d" seq
             held current)
  | Proto.Throttled { seq; retry_after } -> (
      (* The server shed the submit; hold it back so the timeout path
         re-sends no sooner than [retry_after] from now. *)
      match t.pending with
      | Some ({ msg = Proto.Submit { seq = s; _ }; _ } as p) when s = seq ->
          t.stats <- { t.stats with throttled = t.stats.throttled + 1 };
          p.sent_at <- now +. retry_after -. t.config.request_timeout
      | _ -> ())
  | Proto.Busy { retry_after; reason } ->
      disconnect t ~now ~reason:("server busy: " ^ reason);
      t.next_dial <- Float.max t.next_dial (now +. retry_after)
  | Proto.Shutdown -> disconnect t ~now ~reason:"server shutting down"
  | Proto.Pong _ -> ()
  | Proto.Fingerprint fp -> (
      t.fingerprint <- Some fp;
      match t.pending with
      | Some { msg = Proto.Get_fingerprint; _ } ->
          t.pending <- None;
          advance t ~now
      | _ -> ())

let pump_recv t ~now =
  match t.transport with
  | None -> ()
  | Some tr ->
      let rec pull () =
        match tr.Transport.recv ~now with
        | Some chunk ->
            Frame.feed t.dec chunk;
            pull ()
        | None -> ()
      in
      pull ();
      let continue = ref true in
      while !continue && not (finished t) && Option.is_some t.transport do
        match Frame.next t.dec with
        | `Need_more -> continue := false
        | `Corrupt reason ->
            t.stats <- { t.stats with corrupt_streams = t.stats.corrupt_streams + 1 };
            disconnect t ~now ~reason:("corrupt reply stream: " ^ reason);
            continue := false
        | `Frame payload -> (
            match Proto.decode_server payload with
            | msg -> on_msg t ~now msg
            | exception Proto.Corrupt reason ->
                t.stats <- { t.stats with corrupt_streams = t.stats.corrupt_streams + 1 };
                disconnect t ~now ~reason:("corrupt reply: " ^ reason);
                continue := false)
      done

let step t ~now =
  if not (finished t) then begin
    (match t.transport with
    | Some tr when (match tr.Transport.status () with `Closed -> true | `Open -> false)
      ->
        disconnect t ~now ~reason:"connection closed"
    | _ -> ());
    (match t.transport with
    | None ->
        if now >= t.next_dial then begin
          match t.dial ~now with
          | Some tr ->
              t.transport <- Some tr;
              t.dec <- Frame.decoder ();
              t.connections <- t.connections + 1;
              if t.connections > 1 then
                t.stats <- { t.stats with reconnects = t.stats.reconnects + 1 };
              t.phase <- Greeting;
              Transport.send tr ~now Frame.greeting;
              t.last_send <- now;
              send_request t ~now
                (Proto.Hello { client = t.client_id; last_acked = t.acked_seq })
          | None ->
              t.stats <- { t.stats with dial_failures = t.stats.dial_failures + 1 };
              t.attempts <- t.attempts + 1;
              if t.attempts > t.config.max_reconnects then
                t.phase <- Failed (Printf.sprintf "gave up after %d attempts (dial)" t.attempts)
              else t.next_dial <- now +. backoff t
        end
    | Some _ -> ());
    pump_recv t ~now;
    (* Time out the in-flight request. *)
    (match (t.transport, t.pending) with
    | Some _, Some p when now -. p.sent_at >= t.config.request_timeout ->
        if p.tries > t.config.max_retries then
          disconnect t ~now
            ~reason:
              (Printf.sprintf "%s: no reply after %d tries"
                 (Proto.describe_client p.msg) p.tries)
        else begin
          p.tries <- p.tries + 1;
          p.sent_at <- now;
          t.stats <- { t.stats with retries = t.stats.retries + 1 };
          send_msg t ~now p.msg
        end
    | _ -> ());
    (* Keepalive when connected and idle. *)
    (match (t.transport, t.pending) with
    | Some _, None when now -. t.last_send >= t.config.keepalive ->
        send_msg t ~now (Proto.Ping { nonce = t.connections land 0x3FFFFFFF })
    | _ -> ())
  end
