(** The wire-chaos audit: prove the framed protocol end-to-end against
    a seeded hostile transport.

    One {!run} drives the same seeded update stream twice:

    - a {b reference} server fed directly through {!Mdr_server.Server.apply}
      — no wire, no chaos — recording the final fingerprint;
    - a {b chaos} session: a {!Client} streaming the updates to a
      {!Wire_server} over in-memory pipes whose send directions are
      wrapped in independent {!Mdr_faults.Wirefault} lines (byte
      flips, truncation, duplication, delay, stalls, mid-frame
      disconnects), on a deterministic logical clock. Every redial
      builds a fresh pipe with fresh fault lines, and a fraction of
      dials are refused outright to exercise dial backoff.

    The run passes when the client finishes, the chaos server's final
    fingerprint is byte-identical to the reference (and to the
    fingerprint the client itself fetched over the wire), exactly
    [updates] applies reached the journal (exactly-once across every
    retry, duplicate and reconnect), the control plane is settled, and
    the LFI conditions hold. Reconnect latencies feed the recovery
    SLO. *)

type result = {
  seed : int;
  intensity : float;
  updates : int;
  ok : bool;
  client_done : bool;
  fingerprint_ok : bool;
      (** chaos == reference, and the client's wire-fetched copy agrees *)
  exactly_once : bool;  (** wire applies == updates, server seq == updates *)
  lfi : bool;
  settled : bool;
  reconnects : int;
  dial_failures : int;
  retries : int;
  fast_forwarded : int;
  duplicates : int;  (** submits the server re-acked without applying *)
  malformed : int;  (** corrupt frame streams the server dropped *)
  reaped : int;
  chaos : Mdr_faults.Wirefault.counts;  (** both directions, all connections *)
  reconnect_latencies : float list;  (** raw samples, newest first *)
  reconnect_slo : Mdr_faults.Recovery.slo;
  wall_s : float;  (** logical seconds the session took *)
}

val run :
  ?config:Mdr_server.Server.config ->
  ?wire_config:Wire_server.config ->
  ?client_config:Client.config ->
  ?updates:int ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  intensity:float ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  result
(** Defaults: 60 updates, cost [1 + 1000 * prop_delay],
    {!Mdr_server.Server.default_config} with a snapshot every 16
    updates. [intensity] scales {!Mdr_faults.Wirefault.default_params}
    (0 = clean wire). State lives under [dir/ref] and [dir/chaos]. *)

val run_grid :
  ?jobs:int ->
  ?updates:int ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seeds:int list ->
  intensities:float list ->
  unit ->
  result list
(** One {!run} per (seed, intensity) cell, fanned out over the domain
    pool ({!Mdr_util.Pool}) with per-cell state directories; results
    in grid order (seeds major). *)

val slo_by_intensity : result list -> (float * Mdr_faults.Recovery.slo) list
(** Pool the reconnect latencies of all runs at each intensity —
    the EXPERIMENTS.md recovery table. *)

val report : result list -> string
(** Per-run table rendered with {!Mdr_util.Tab}. *)
