(** The wire-chaos audit: prove the framed protocol end-to-end against
    a seeded hostile transport.

    One {!run} drives the same seeded update stream twice:

    - a {b reference} server fed directly through {!Mdr_server.Server.apply}
      — no wire, no chaos — recording the final fingerprint;
    - a {b chaos} session: a {!Client} streaming the updates to a
      {!Wire_server} over in-memory pipes whose send directions are
      wrapped in independent {!Mdr_faults.Wirefault} lines (byte
      flips, truncation, duplication, delay, stalls, mid-frame
      disconnects), on a deterministic logical clock. Every redial
      builds a fresh pipe with fresh fault lines, and a fraction of
      dials are refused outright to exercise dial backoff.

    The run passes when the client finishes, the chaos server's final
    fingerprint is byte-identical to the reference (and to the
    fingerprint the client itself fetched over the wire), exactly
    [updates] applies reached the journal (exactly-once across every
    retry, duplicate and reconnect), the control plane is settled, and
    the LFI conditions hold. Reconnect latencies feed the recovery
    SLO. *)

type result = {
  seed : int;
  intensity : float;
  updates : int;
  ok : bool;
  client_done : bool;
  fingerprint_ok : bool;
      (** chaos == reference, and the client's wire-fetched copy agrees *)
  exactly_once : bool;  (** wire applies == updates, server seq == updates *)
  lfi : bool;
  settled : bool;
  reconnects : int;
  dial_failures : int;
  retries : int;
  fast_forwarded : int;
  duplicates : int;  (** submits the server re-acked without applying *)
  malformed : int;  (** corrupt frame streams the server dropped *)
  reaped : int;
  chaos : Mdr_faults.Wirefault.counts;  (** both directions, all connections *)
  reconnect_latencies : float list;  (** raw samples, newest first *)
  reconnect_slo : Mdr_faults.Recovery.slo;
  wall_s : float;  (** logical seconds the session took *)
}

val run :
  ?config:Mdr_server.Server.config ->
  ?wire_config:Wire_server.config ->
  ?client_config:Client.config ->
  ?updates:int ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  intensity:float ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  result
(** Defaults: 60 updates, cost [1 + 1000 * prop_delay],
    {!Mdr_server.Server.default_config} with a snapshot every 16
    updates. [intensity] scales {!Mdr_faults.Wirefault.default_params}
    (0 = clean wire). State lives under [dir/ref] and [dir/chaos]. *)

val run_grid :
  ?jobs:int ->
  ?updates:int ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seeds:int list ->
  intensities:float list ->
  unit ->
  result list
(** One {!run} per (seed, intensity) cell, fanned out over the domain
    pool ({!Mdr_util.Pool}) with per-cell state directories; results
    in grid order (seeds major). *)

val slo_by_intensity : result list -> (float * Mdr_faults.Recovery.slo) list
(** Pool the reconnect latencies of all runs at each intensity —
    the EXPERIMENTS.md recovery table. *)

val report : result list -> string
(** Per-run table rendered with {!Mdr_util.Tab}. *)

(** {1 The multi-writer audit}

    {!run_multi} is the concurrent-chaos version of {!run}: [clients]
    seeded writers, each owning a disjoint round-robin share of the
    duplex pairs ({!Mdr_faults.Procfault.partition_pairs}), claim their
    links and push interleaved chaos-wrapped streams at one server.
    The server is killed at adversarial points (between updates, mid
    journal append via {!Mdr_server.Server.arm_torn}, mid snapshot) and
    restored; clients are killed and replaced by fresh machines that
    resume through the Welcome contract.

    Because router state is path-dependent (per-router LSU counters),
    the sequential reference replays the {e recorded accepted order} —
    harvested from every server incarnation's
    {!Wire_server.applied_log} — through the fenced submit path. The
    run passes when every client finishes, the final fingerprint is
    byte-identical to that reference, every entry replays cleanly
    (which is also the zero-stale-epoch-applies proof), applies are
    exactly-once per client, every restore rebuilt the per-client
    durable marks / claim table / epoch byte-identically, the control
    plane settled, and LFI holds. *)

type client_report = {
  client : int;
  client_done : bool;
  updates : int;
  acked : int;
  resumes : int;  (** times the client process was killed and restarted *)
  reconnects : int;
  dial_failures : int;
  retries : int;
  fast_forwarded : int;
  throttled : int;  (** submits delayed by a [Throttled] reply *)
  shed : int;  (** server-side token-bucket sheds for this client *)
  reconnect_latencies : float list;
  reconnect_slo : Mdr_faults.Recovery.slo;
}

type multi_result = {
  seed : int;
  intensity : float;
  clients : int;
  updates_per_client : int;
  ok : bool;
  all_done : bool;
  fingerprint_ok : bool;  (** final chaos state == sequential reference *)
  replay_ok : bool;
      (** every accepted entry replayed cleanly, in order, through the
          fenced path *)
  exactly_once : bool;
      (** per client: exactly [updates] applies, no (client, seq)
          duplicates, durable mark == updates *)
  marks_ok : bool;
      (** every restore rebuilt marks/claims/epoch byte-identically *)
  no_stale_applies : bool;  (** [replay_ok] and zero [Fenced] replies *)
  lfi : bool;
  settled : bool;
  server_kills : int;
  client_kills : int;
  grants : int;  (** ownership grants journaled *)
  fenced : int;
  throttled : int;
  quarantines : int;
  evicted : int;
  duplicates : int;
  malformed : int;
  chaos : Mdr_faults.Wirefault.counts;
  per_client : client_report list;
  reconnect_slo : Mdr_faults.Recovery.slo;  (** pooled over all clients *)
  wall_s : float;
}

val run_multi :
  ?config:Mdr_server.Server.config ->
  ?wire_config:Wire_server.config ->
  ?client_config:Client.config ->
  ?clients:int ->
  ?updates:int ->
  ?server_kills:int ->
  ?client_kills:int ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  intensity:float ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  multi_result
(** Defaults: 4 clients, 30 updates each, 3 server kills, 2 client
    kills. [record_applies] is forced on whatever [wire_config] is
    given. Requires [clients >= 2] and a topology with at least
    [clients] duplex pairs. State lives under [dir/chaos] and
    [dir/ref]. *)

val run_multi_grid :
  ?jobs:int ->
  ?updates:int ->
  ?server_kills:int ->
  ?client_kills:int ->
  ?intensity:float ->
  dir:string ->
  topo:Mdr_topology.Graph.t ->
  seeds:int list ->
  client_counts:int list ->
  unit ->
  multi_result list
(** One {!run_multi} per (seed, client count) cell at [intensity]
    (default 1.0), fanned out over the domain pool with per-cell state
    directories; results in grid order (seeds major). *)

val multi_slo_by_clients :
  multi_result list -> (int * Mdr_faults.Recovery.slo) list
(** Pool the per-client reconnect latencies of all runs at each client
    count — the EXPERIMENTS.md multi-writer SLO table. *)

val report_multi : multi_result list -> string
(** Per-run table rendered with {!Mdr_util.Tab}. *)
