module Codec = Mdr_server.Codec

let magic = "MDRW"
let version = 2
let max_payload = 65536
let greeting = Codec.header ~magic ~version

let encode payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Frame.encode: empty payload";
  if n > max_payload then
    invalid_arg (Printf.sprintf "Frame.encode: payload of %d bytes exceeds %d" n max_payload);
  Codec.frame payload

type decoder = {
  mutable acc : string;  (* received, not yet decoded *)
  mutable greeted : bool;
  mutable failure : string option;  (* sticky *)
}

let decoder () = { acc = ""; greeted = false; failure = None }

let feed d chunk =
  if Option.is_none d.failure && String.length chunk > 0 then d.acc <- d.acc ^ chunk

let buffered d = String.length d.acc

let fail d reason =
  d.failure <- Some reason;
  d.acc <- "";
  `Corrupt reason

let rec next d =
  match d.failure with
  | Some reason -> `Corrupt reason
  | None ->
      if not d.greeted then
        if String.length d.acc < Codec.header_len then `Need_more
        else begin
          match Codec.check_header d.acc ~magic with
          | Error reason -> fail d reason
          | Ok v when v <> version ->
              fail d (Printf.sprintf "unsupported wire version %d" v)
          | Ok _ ->
              d.greeted <- true;
              d.acc <- String.sub d.acc Codec.header_len (String.length d.acc - Codec.header_len);
              next d
        end
      else if String.length d.acc < 8 then `Need_more
      else begin
        (* Cap the declared length before trusting it with any
           allocation or buffering decision. *)
        let len = Int32.to_int (String.get_int32_be d.acc 0) in
        let crc = String.get_int32_be d.acc 4 in
        if len <= 0 || len > max_payload then
          fail d (Printf.sprintf "implausible frame length %d" len)
        else if String.length d.acc < 8 + len then `Need_more
        else begin
          let payload = String.sub d.acc 8 len in
          if not (Int32.equal (Codec.crc32 payload) crc) then fail d "frame checksum mismatch"
          else begin
            d.acc <- String.sub d.acc (8 + len) (String.length d.acc - 8 - len);
            `Frame payload
          end
        end
      end
