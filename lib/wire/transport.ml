(* Byte-stream transports: an in-memory pipe on a logical clock, a
   non-blocking socket wrapper, and the chaos composition. *)

module Wirefault = Mdr_faults.Wirefault

type t = {
  send_at : now:float -> at:float -> string -> unit;
  recv : now:float -> string option;
  close : unit -> unit;
  status : unit -> [ `Open | `Closed ];
}

let send t ~now chunk = t.send_at ~now ~at:now chunk

(* ---- in-memory pipe -------------------------------------------------- *)

(* Each direction is a list of (deliver_at, send_seq, chunk) kept
   sorted by (deliver_at, send_seq): a delayed chunk reorders against
   later undelayed ones, but ties deliver in send order. *)
let pipe () =
  let closed = ref false in
  let seqno = ref 0 in
  let q_ab = ref [] and q_ba = ref [] in
  let insert q ~at chunk =
    incr seqno;
    let s = !seqno in
    let rec go = function
      | [] -> [ (at, s, chunk) ]
      | ((at', s', _) as hd) :: tl ->
          if at < at' || (Float.equal at at' && s < s') then (at, s, chunk) :: hd :: tl
          else hd :: go tl
    in
    q := go !q
  in
  let close () =
    if not !closed then begin
      closed := true;
      q_ab := [];
      q_ba := []
    end
  in
  let endpoint out inbox =
    {
      send_at =
        (fun ~now ~at chunk ->
          if not !closed then insert out ~at:(Float.max now at) chunk);
      recv =
        (fun ~now ->
          if !closed then None
          else
            match !inbox with
            | (at, _, chunk) :: tl when at <= now ->
                inbox := tl;
                Some chunk
            | _ -> None);
      close;
      status = (fun () -> if !closed then `Closed else `Open);
    }
  in
  (endpoint q_ab q_ba, endpoint q_ba q_ab)

(* ---- real sockets ---------------------------------------------------- *)

let of_fd fd =
  Unix.set_nonblock fd;
  let open_ = ref true in
  let out = ref "" in
  let close () =
    if !open_ then begin
      open_ := false;
      try Unix.close fd with Unix.Unix_error (Unix.EBADF, _, _) -> ()
    end
  in
  let flush_out () =
    if !open_ && String.length !out > 0 then begin
      let s = !out in
      match Unix.single_write_substring fd s 0 (String.length s) with
      | n -> out := String.sub s n (String.length s - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN | Unix.EBADF), _, _)
        ->
          close ()
    end
  in
  let rbuf = Bytes.create 65536 in
  {
    send_at =
      (fun ~now:_ ~at:_ chunk ->
        if !open_ then begin
          out := !out ^ chunk;
          flush_out ()
        end);
    recv =
      (fun ~now:_ ->
        flush_out ();
        if not !open_ then None
        else
          match Unix.read fd rbuf 0 (Bytes.length rbuf) with
          | 0 ->
              close ();
              None
          | n -> Some (Bytes.sub_string rbuf 0 n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              None
          | exception
              Unix.Unix_error
                ((Unix.ECONNRESET | Unix.EPIPE | Unix.ENOTCONN | Unix.EBADF), _, _)
            ->
              close ();
              None);
    close;
    status = (fun () -> if !open_ then `Open else `Closed);
  }

(* ---- chaos composition ----------------------------------------------- *)

let with_chaos ~line t =
  {
    t with
    send_at =
      (fun ~now ~at chunk ->
        if String.length chunk > 0 && not (Wirefault.dead line) then begin
          List.iter
            (fun (at', chunk') -> t.send_at ~now ~at:at' chunk')
            (Wirefault.transform line ~now:(Float.max now at) chunk);
          if Wirefault.dead line then t.close ()
        end);
  }
